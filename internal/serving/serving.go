// Package serving implements Serenade's online component (§4): a stateful
// recommendation server that colocates the evolving user sessions with the
// update and recommendation requests.
//
// Each request carries a session identifier, the item the user just
// interacted with, and a consent flag. The server appends the item to the
// session state held in a machine-local TTL key-value store (internal/
// kvstore, the RocksDB stand-in), runs VMIS-kNN against the replicated
// session similarity index, applies the business rules (drop unavailable and
// adult items, and the item currently displayed), and responds with the
// ranked next-item recommendations — 21 of them in production, the number
// the shop frontend's UI slot requires.
package serving

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/core"
	"serenade/internal/kvstore"
	"serenade/internal/metrics"
	"serenade/internal/obs"
	"serenade/internal/obs/quality"
	"serenade/internal/obs/slo"
	"serenade/internal/sessions"
	"serenade/internal/trending"
)

// DefaultRecommendations is the number of items the bol.com frontend slot
// renders per request.
const DefaultRecommendations = 21

// DefaultSessionTTL matches the production configuration: session state is
// dropped after 30 minutes of inactivity.
const DefaultSessionTTL = 30 * time.Minute

// maxStoredSessionLength bounds the session state kept per user; only the
// most recent items influence predictions, so older clicks are dropped.
const maxStoredSessionLength = 50

// DefaultIdempotencyTTL is how long a request's response is retained for
// duplicate suppression when Config.IdempotencyTTL is zero — comfortably
// past any client timeout+retry window.
const DefaultIdempotencyTTL = 2 * time.Minute

// maxDedupeEntries bounds the idempotency table; past it the server sweeps
// expired entries and, if still full, stops recording new keys (fail open:
// a duplicate may then reprocess, which is the pre-dedupe behaviour).
const maxDedupeEntries = 1 << 16

// Config parameterises a Server.
type Config struct {
	// Params are the VMIS-kNN hyperparameters (production: m=500, k=500).
	Params core.Params
	// Recommendations is the response list length; 0 means
	// DefaultRecommendations.
	Recommendations int
	// HistoryLength caps how many of the session's most recent items feed
	// the prediction: the A/B test variants of §5.2.3 are HistoryLength=2
	// (serenade-hist) and HistoryLength=1 (serenade-recent). 0 uses the
	// full stored session (up to the algorithm's own cap).
	HistoryLength int
	// SessionTTL is the session-state inactivity expiry; 0 means
	// DefaultSessionTTL.
	SessionTTL time.Duration
	// StoreDir enables durable session storage when non-empty.
	StoreDir string
	// WALSync is the session store's WAL fsync policy; empty means
	// kvstore.SyncInterval (group commit). Only meaningful with StoreDir.
	WALSync kvstore.SyncPolicy
	// WALSyncInterval is the group-commit flush period for
	// kvstore.SyncInterval; zero means kvstore.DefaultSyncInterval.
	WALSyncInterval time.Duration
	// IdempotencyTTL is how long responses are retained for duplicate
	// suppression via the X-Idempotency-Key header: a retried request whose
	// first attempt already landed replays the stored response instead of
	// appending the click to the session again. Zero means
	// DefaultIdempotencyTTL; negative disables deduplication.
	IdempotencyTTL time.Duration
	// Catalog supplies the business-rule item flags; nil disables
	// catalog-based filtering.
	Catalog *Catalog
	// FallbackToPopular pads short recommendation lists with the most
	// popular recommendable items, so the UI slot is always full even for
	// cold sessions on rare items.
	FallbackToPopular bool
	// BatchWindow enables request batching: the first request of a batch
	// waits up to this long for concurrent requests to join, and the batch
	// runs the kernel once with shared CSR posting walks (core.
	// BatchRecommend). Zero disables batching — the right default at low
	// concurrency, where the window is pure added latency.
	BatchWindow time.Duration
	// BatchMax caps how many requests one batch gathers; 0 means
	// DefaultBatchMax. Only meaningful with BatchWindow.
	BatchMax int
	// ResultCacheSize enables the single-flight result cache: the maximum
	// number of retained predictions. Concurrent requests with an identical
	// kernel-truncated session tail coalesce onto one execution, and repeats
	// within ResultCacheTTL are answered from memory. 0 disables.
	ResultCacheSize int
	// ResultCacheTTL is the cached-prediction lifetime; 0 means
	// DefaultResultCacheTTL. Only meaningful with ResultCacheSize.
	ResultCacheTTL time.Duration
	// OwnIndex makes the server responsible for releasing index
	// generations: an index replaced by SwapIndex (and the active one on
	// Close) is closed — unmapping file-backed indexes — once its in-flight
	// requests drain. Leave it false when the index is shared with other
	// readers (e.g. cluster.Pool replicas over one index).
	OwnIndex bool
	// Trending, when non-nil, receives every click so the companion
	// "new and trending" slot (§4.1) can serve items the daily index has
	// not seen yet; it is exposed at GET /v1/trending.
	Trending *trending.Tracker
	// Now injects a clock for tests.
	Now func() time.Time

	// SlowQueryThreshold enables the sampled slow-query log: any request
	// slower than this gets its full stage breakdown logged through Logger.
	// 0 disables slow-query logging.
	SlowQueryThreshold time.Duration
	// SlowLogPerSecond caps slow-query log entries per second (default 5).
	SlowLogPerSecond int
	// TraceRingSize is the capacity of the recent-trace ring served at
	// GET /debug/traces; 0 means 256, negative disables the ring.
	TraceRingSize int
	// TraceSampleEvery keeps 1 in N traces in the ring (default 1 = all);
	// slow requests bypass sampling.
	TraceSampleEvery int
	// Logger receives structured serving logs (slow queries); nil uses
	// slog.Default().
	Logger *slog.Logger

	// SLOLatencyThreshold is the latency objective for the recommend
	// endpoint: requests slower than this burn the latency error budget
	// (the -slo-latency-p99 flag). 0 disables the latency objective; the
	// SLO engine still tracks the error-rate objective.
	SLOLatencyThreshold time.Duration
	// SLOLatencyBudget is the fraction of requests allowed to exceed
	// SLOLatencyThreshold (0.01 = a p99 objective). 0 means
	// slo.DefaultLatencyBudget.
	SLOLatencyBudget float64
	// SLOErrorBudget is the fraction of requests allowed to fail (the
	// -slo-error-budget flag). 0 disables the error-rate objective.
	SLOErrorBudget float64

	// Quality enables the online recommendation-quality loop: every response
	// is stamped with a recommendation id and logged as an exposure, POST
	// /track attributes click/conversion feedback back to it, and the
	// windowed quality gauges, serenade_quality_* metrics, GET /debug/quality
	// document and drift detector hang off the attributed stream. Nil
	// disables the loop (and the /track endpoint). Zero-valued fields take
	// quality defaults; CatalogSize and K default from the index and the
	// response slot, Now from Config.Now.
	Quality *quality.Options
}

// Server is one stateful recommendation server ("Serenade pod"). It is safe
// for concurrent use; VMIS-kNN query state is pooled per goroutine.
//
// The index is replaced atomically once per day when the offline job ships a
// fresh build (SwapIndex); in-flight requests finish against the index they
// started with.
type Server struct {
	cfg   Config
	store *kvstore.Store
	// dedupe maps idempotency keys to already-sent response bodies (a
	// memory-only TTL'd kvstore). It suppresses the double-append a client
	// retry causes when the first attempt landed but its response was lost.
	dedupe *kvstore.Store
	// active holds the current index generation: the index plus a pool of
	// recommenders bound to it. Swapped wholesale on index rollover.
	active atomic.Pointer[indexGeneration]
	// genSeq numbers index generations; cache keys embed it so a rollover
	// implicitly invalidates every cached prediction.
	genSeq atomic.Uint64
	// cache is the single-flight result cache (nil unless
	// Config.ResultCacheSize > 0).
	cache *resultCache
	// batcher gathers concurrent requests into shared kernel batches (nil
	// unless Config.BatchWindow > 0).
	batcher *batcher

	// requests and stages are contention-free striped histograms: recording
	// a latency must never become the scalability bottleneck it would be
	// behind a single mutex (§6's curves are drawn from these).
	requests *metrics.StripedHistogram
	stages   [obs.NumStages]*metrics.StripedHistogram
	tracer   *obs.Tracer
	slowLog  *obs.SlowLog
	reg      *obs.Registry
	// slo tracks the multi-window burn rates behind GET /debug/slo;
	// sloRecommend is the recommend endpoint's tracker, resolved once so the
	// per-request record stays allocation-free.
	slo          *slo.Engine
	sloRecommend *slo.Tracker
	// quality is the online quality tracker (nil unless Config.Quality). Its
	// three pipeline lines are resolved once at startup so the exposure
	// record on the hot path takes no lock and no map lookup.
	quality  *quality.Tracker
	qlKNN    *quality.Line
	qlPadded *quality.Line
	qlDepers *quality.Line
	// inflight counts requests between entry and span finish — the most
	// immediate overload signal in the health surface.
	inflight atomic.Int64
	// batchWaitMax is the rolling queue-wait high-watermark (nil unless
	// batching is enabled); cacheWin tracks rolling (lookups, absorbed)
	// counts for the health signal's hit-ratio windows (nil without cache).
	batchWaitMax *metrics.WindowedMax
	cacheWin     *metrics.WindowedCounter
	errors       *obs.Counter
	errStore     *obs.Counter
	errInput     *obs.Counter
	padded       *obs.Counter
	depers       *obs.Counter
	idemReplays  *obs.Counter
	swaps        atomic.Uint64
	// loadNanos is the duration of the most recent index load, reported by
	// the embedding binary via RecordIndexLoad and exported as
	// serenade_index_load_seconds.
	loadNanos atomic.Int64
}

// indexGeneration ties a recommender pool to the index it queries, so a
// request never mixes state across an index swap. Generations are
// reference-counted: a request acquires the active generation for its
// duration, and a generation replaced by SwapIndex is retired — its index
// closed (munmapped, for file-backed indexes) only after the last in-flight
// request releases it, and only when the server owns the index
// (Config.OwnIndex).
type indexGeneration struct {
	idx *core.Index
	// seq is the generation's rollover sequence number, embedded in result
	// cache keys so entries die with their generation.
	seq uint64
	// popular ranks items by document frequency, the fallback order.
	popular []core.ScoredItem
	pool    sync.Pool
	// batchPool pools BatchRecommenders for the request batcher (empty New
	// unless batching is enabled).
	batchPool sync.Pool
	// recBytes is one pooled recommender's footprint, computed once at
	// generation build so Stats and the metrics scrape never need to pull
	// a recommender out of the pool.
	recBytes int64

	inflight atomic.Int64
	retired  atomic.Bool
	ownIdx   bool
}

func newGeneration(idx *core.Index, params core.Params, fallback, own bool, batchMax int) (*indexGeneration, error) {
	proto, err := core.NewRecommender(idx, params)
	if err != nil {
		return nil, err
	}
	g := &indexGeneration{idx: idx, recBytes: proto.MemoryFootprint(), ownIdx: own}
	g.pool.New = func() any { return proto.Clone() }
	if batchMax > 0 {
		g.batchPool.New = func() any {
			// Parameters were validated by NewRecommender above, so this
			// cannot fail against the same index.
			br, err := core.NewBatchRecommender(idx, params, batchMax)
			if err != nil {
				panic("serving: batch recommender: " + err.Error())
			}
			return br
		}
	}
	if fallback {
		g.popular = popularItems(idx)
	}
	return g, nil
}

// acquireGen pins the active generation for the duration of a request: the
// generation's index cannot be closed until the matching release. The
// increment-then-recheck loop closes the race with a concurrent SwapIndex —
// if the generation was replaced between the load and the increment, its
// retirement may already have seen a zero count, so the acquisition is
// abandoned and retried against the new active generation. (Touching the
// generation struct itself is always safe: it is heap memory the GC keeps
// alive; only the index's mapped arena has a manual lifetime.)
func (s *Server) acquireGen() *indexGeneration {
	for {
		g := s.active.Load()
		g.inflight.Add(1)
		if s.active.Load() == g {
			return g
		}
		g.release()
	}
}

// release drops a request's pin; the last release of a retired generation
// closes its index. Index.Close is idempotent, so the benign race where both
// the releasing request and the retiring swap observe a drained generation
// resolves to a single close.
func (g *indexGeneration) release() {
	if g.inflight.Add(-1) == 0 && g.retired.Load() {
		g.drained()
	}
}

// retire marks a generation as replaced; if no request holds it the index is
// closed immediately, otherwise the last release closes it.
func (g *indexGeneration) retire() {
	g.retired.Store(true)
	if g.inflight.Load() == 0 {
		g.drained()
	}
}

func (g *indexGeneration) drained() {
	if g.ownIdx {
		g.idx.Close()
	}
}

// popularItems ranks the catalog by document frequency (most sessions
// first), ties toward smaller item ids.
func popularItems(idx *core.Index) []core.ScoredItem {
	out := make([]core.ScoredItem, 0, idx.NumItems())
	for i := 0; i < idx.NumItems(); i++ {
		item := sessions.ItemID(i)
		if df := idx.DF(item); df > 0 {
			out = append(out, core.ScoredItem{Item: item, Score: float64(df)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Item < out[b].Item
	})
	const maxFallback = 512
	if len(out) > maxFallback {
		out = out[:maxFallback:maxFallback]
	}
	return out
}

// batchMax resolves the effective batch bound: 0 when batching is disabled.
func (c Config) batchMax() int {
	if c.BatchWindow <= 0 {
		return 0
	}
	if c.BatchMax <= 0 {
		return DefaultBatchMax
	}
	return c.BatchMax
}

// NewServer creates a serving instance against a (replicated, immutable)
// session similarity index.
func NewServer(idx *core.Index, cfg Config) (*Server, error) {
	if cfg.Recommendations <= 0 {
		cfg.Recommendations = DefaultRecommendations
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = DefaultSessionTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	gen, err := newGeneration(idx, cfg.Params, cfg.FallbackToPopular, cfg.OwnIndex, cfg.batchMax())
	if err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	store, err := kvstore.Open(kvstore.Options{
		Dir:          cfg.StoreDir,
		TTL:          cfg.SessionTTL,
		Sync:         cfg.WALSync,
		SyncInterval: cfg.WALSyncInterval,
		Now:          cfg.Now,
	})
	if err != nil {
		return nil, fmt.Errorf("serving: opening session store: %w", err)
	}
	var dedupe *kvstore.Store
	if cfg.IdempotencyTTL >= 0 {
		ttl := cfg.IdempotencyTTL
		if ttl == 0 {
			ttl = DefaultIdempotencyTTL
		}
		// Memory-only: after a restart the sessions the keys guard are in
		// the same boat as the dedupe state, so persisting it buys nothing.
		dedupe, err = kvstore.Open(kvstore.Options{TTL: ttl, Now: cfg.Now})
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("serving: opening idempotency table: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		dedupe:   dedupe,
		requests: metrics.NewStripedHistogram(),
	}
	for i := range s.stages {
		s.stages[i] = metrics.NewStripedHistogram()
	}
	if cfg.SlowQueryThreshold > 0 {
		s.slowLog = obs.NewSlowLog(cfg.Logger, cfg.SlowQueryThreshold, cfg.SlowLogPerSecond)
	}
	s.tracer = obs.NewTracer(obs.TracerOptions{
		RingSize:    cfg.TraceRingSize,
		SampleEvery: cfg.TraceSampleEvery,
		SlowLog:     s.slowLog,
	})
	s.slo = slo.NewEngine(slo.Objective{
		LatencyThreshold: cfg.SLOLatencyThreshold,
		LatencyBudget:    cfg.SLOLatencyBudget,
		ErrorBudget:      cfg.SLOErrorBudget,
	}, cfg.Now)
	s.sloRecommend = s.slo.Tracker("recommend")
	if s.slowLog != nil {
		// Every slow-query line carries the burn picture it contributed to.
		s.slowLog.SetBurnState(s.slo.Burning)
	}
	if cfg.Quality != nil {
		q := *cfg.Quality
		if q.CatalogSize == 0 {
			q.CatalogSize = idx.NumItems()
		}
		if q.K <= 0 {
			q.K = cfg.Recommendations
		}
		if q.Now == nil {
			q.Now = cfg.Now
		}
		s.quality = quality.New(q)
		s.qlKNN = s.quality.Line("knn")
		s.qlPadded = s.quality.Line("knn+popular")
		s.qlDepers = s.quality.Line("depersonalised")
		if s.slowLog != nil {
			// ... and the quality-drift verdict, so a slow query during a
			// quality incident is recognisable as part of one picture.
			s.slowLog.SetQualityState(func() (bool, string) {
				st := s.quality.Drift()
				return st.Drifting, st.Reason
			})
		}
	}
	if cfg.ResultCacheSize > 0 {
		s.cache = newResultCache(cfg.ResultCacheSize, cfg.ResultCacheTTL, cfg.Now)
		s.cacheWin = metrics.NewWindowedCounter(time.Minute, cfg.Now)
	}
	if cfg.BatchWindow > 0 {
		s.batchWaitMax = metrics.NewWindowedMax(time.Minute, cfg.Now)
		s.batcher = newBatcher(s, cfg.BatchWindow, cfg.batchMax())
	}
	s.buildRegistry()
	s.active.Store(gen)
	return s, nil
}

// buildRegistry wires every serving signal into the Prometheus registry:
// request/error/fallback counters, session-store op counters, index and
// capacity gauges, the request and per-stage latency histograms, and the Go
// runtime series — enough that the Figure 3(b)/3(c) curves fall out of a
// plain scrape of /metrics.prom.
func (s *Server) buildRegistry() {
	r := obs.NewRegistry()
	s.reg = r

	s.errors = r.Counter("serenade_errors_total", "Requests that failed.")
	s.errStore = r.Counter("serenade_errors_by_class_total", "Failed requests by error class.", "class", "store")
	s.errInput = r.Counter("serenade_errors_by_class_total", "Failed requests by error class.", "class", "bad_request")
	s.padded = r.Counter("serenade_fallback_padded_total", "Responses padded with popularity fallback items.")
	s.depers = r.Counter("serenade_depersonalised_total", "Requests served without consent (history discarded).")
	s.idemReplays = r.Counter("serenade_idempotent_replays_total", "Duplicate requests answered from the idempotency table without reprocessing.")

	r.CounterFunc("serenade_requests_total", "Recommendation requests served.",
		func() float64 { return float64(s.requests.Count()) })
	r.CounterFunc("serenade_index_swaps_total", "Index rollovers since start.",
		func() float64 { return float64(s.swaps.Load()) })

	r.GaugeFunc("serenade_inflight_requests", "Requests currently being served.",
		func() float64 { return float64(s.inflight.Load()) })
	if s.slowLog != nil {
		r.CounterFunc("serenade_slowlog_entries_total", "Slow-query log lines emitted.",
			func() float64 { return float64(s.slowLog.Logged()) })
		r.CounterFunc("serenade_slowlog_suppressed_total", "Slow-query log lines dropped by the per-second rate limit.",
			func() float64 { return float64(s.slowLog.SuppressedTotal()) })
	}
	s.slo.RegisterMetrics(r)
	if s.quality != nil {
		s.quality.RegisterMetrics(r)
	}

	r.GaugeFunc("serenade_active_sessions", "Evolving sessions currently stored.",
		func() float64 { return float64(s.store.Len()) })
	r.GaugeFunc("serenade_index_sessions", "Historical sessions in the active index.",
		func() float64 { return float64(s.active.Load().idx.NumSessions()) })
	r.GaugeFunc("serenade_index_items", "Distinct items in the active index.",
		func() float64 { return float64(s.active.Load().idx.NumItems()) })
	r.GaugeFunc("serenade_index_bytes", "Estimated footprint of the active immutable index.",
		func() float64 { return float64(s.active.Load().idx.MemoryFootprint()) })
	r.GaugeFunc("serenade_index_heap_bytes", "Heap-resident (GC-scanned) portion of the active index.",
		func() float64 { heap, _ := s.active.Load().idx.MemoryBreakdown(); return float64(heap) })
	r.GaugeFunc("serenade_index_mmap_bytes", "File-backed mmap portion of the active index (page cache, reclaimable).",
		func() float64 { _, mapped := s.active.Load().idx.MemoryBreakdown(); return float64(mapped) })
	r.GaugeFunc("serenade_index_load_seconds", "Duration of the most recent index load (startup or rollover).",
		func() float64 { return float64(s.loadNanos.Load()) / 1e9 })
	r.GaugeFunc("serenade_recommender_bytes", "Per-goroutine footprint of one pooled query kernel.",
		func() float64 { return float64(s.active.Load().recBytes) })

	for _, c := range []struct {
		name, help string
		read       func(kvstore.Metrics) uint64
	}{
		{"serenade_store_gets_total", "Session-store reads.", func(m kvstore.Metrics) uint64 { return m.Gets }},
		{"serenade_store_hits_total", "Session-store reads that found live state.", func(m kvstore.Metrics) uint64 { return m.Hits }},
		{"serenade_store_puts_total", "Session-store writes.", func(m kvstore.Metrics) uint64 { return m.Puts }},
		{"serenade_store_deletes_total", "Session-store deletes.", func(m kvstore.Metrics) uint64 { return m.Deletes }},
		{"serenade_store_evictions_total", "Session entries dropped by TTL expiry.", func(m kvstore.Metrics) uint64 { return m.Evictions }},
		{"serenade_store_wal_bytes_total", "Bytes appended to the session-store WAL.", func(m kvstore.Metrics) uint64 { return m.WALBytes }},
		{"serenade_store_fsyncs_total", "Session-store WAL fsync calls.", func(m kvstore.Metrics) uint64 { return m.Fsyncs }},
		{"serenade_store_fsync_batch_records_total", "WAL records made durable by group-commit fsyncs (ratio to fsyncs = mean batch size).", func(m kvstore.Metrics) uint64 { return m.FsyncBatchRecords }},
		{"serenade_store_unknown_wal_ops_total", "WAL replay stops at records with an unrecognized opcode.", func(m kvstore.Metrics) uint64 { return m.UnknownWALOps }},
		{"serenade_store_snapshot_fallbacks_total", "Recoveries that rejected a corrupt snapshot and replayed the WAL alone.", func(m kvstore.Metrics) uint64 { return m.SnapshotFallbacks }},
	} {
		read := c.read
		r.CounterFunc(c.name, c.help, func() float64 { return float64(read(s.store.Metrics())) })
	}
	r.CounterFunc("serenade_store_fsync_seconds_total", "Total time spent in WAL fsyncs (ratio to fsyncs = mean fsync latency).",
		func() float64 { return float64(s.store.Metrics().FsyncNanos) / 1e9 })
	if s.dedupe != nil {
		r.GaugeFunc("serenade_idempotency_entries", "Responses currently retained for duplicate suppression.",
			func() float64 { return float64(s.dedupe.Len()) })
	}

	if s.cache != nil {
		r.CounterFunc("serenade_result_cache_hits_total", "Predictions answered from a completed cache entry.",
			func() float64 { return float64(s.cache.hits.Load()) })
		r.CounterFunc("serenade_result_cache_misses_total", "Predictions that had to execute the kernel (cache leaders).",
			func() float64 { return float64(s.cache.misses.Load()) })
		r.CounterFunc("serenade_result_cache_coalesced_total", "Predictions that waited on a concurrent identical request (single-flight).",
			func() float64 { return float64(s.cache.coalesced.Load()) })
		r.CounterFunc("serenade_result_cache_evictions_total", "Cache entries dropped by TTL expiry or the size bound.",
			func() float64 { return float64(s.cache.evictions.Load()) })
		r.GaugeFunc("serenade_result_cache_entries", "Predictions currently cached.",
			func() float64 { return float64(s.cache.len()) })
		for _, w := range []time.Duration{10 * time.Second, time.Minute} {
			w := w
			r.GaugeFunc("serenade_result_cache_hit_ratio", "Fraction of recent predictions absorbed by the cache (hit or coalesced), per rolling window.",
				func() float64 {
					lookups, absorbed, _ := s.cacheWin.Sum(w)
					if lookups == 0 {
						return 0
					}
					return float64(absorbed) / float64(lookups)
				}, "window", w.String())
		}
	}
	if s.batcher != nil {
		r.GaugeFunc("serenade_batcher_depth", "Requests submitted to the batcher and not yet dispatched.",
			func() float64 { return float64(s.batcher.depth.Load()) })
		r.GaugeFunc("serenade_batcher_window_seconds", "Configured batch wait window.",
			func() float64 { return s.batcher.window.Seconds() })
		r.CounterFunc("serenade_batcher_batches_total", "Kernel batches dispatched (ratio to batched requests = mean batch size).",
			func() float64 { return float64(s.batcher.batches.Load()) })
		r.CounterFunc("serenade_batcher_batched_requests_total", "Requests served through the batcher.",
			func() float64 { return float64(s.batcher.batchedRequests.Load()) })
		for _, w := range []time.Duration{10 * time.Second, time.Minute} {
			w := w
			r.GaugeFunc("serenade_batcher_wait_max_seconds", "Worst batcher queue wait any request ate, per rolling window.",
				func() float64 { return time.Duration(s.batchWaitMax.Max(w)).Seconds() }, "window", w.String())
		}
	}

	r.Histogram("serenade_request_latency_seconds", "End-to-end request latency.", s.requests)
	for i := range s.stages {
		r.Histogram("serenade_stage_latency_seconds", "Per-stage request latency.",
			s.stages[i], "stage", obs.Stage(i).String())
	}
	r.RegisterGoRuntime()
}

// Registry exposes the server's metric registry (for embedding binaries
// that add their own series next to the serving ones).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's request tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SLO exposes the burn-rate engine behind GET /debug/slo (for embedding
// binaries and the load harness).
func (s *Server) SLO() *slo.Engine { return s.slo }

// Quality exposes the online quality tracker (nil when disabled), for
// embedding binaries and the load harness.
func (s *Server) Quality() *quality.Tracker { return s.quality }

// TrackRequest is one click/conversion feedback event for POST /track: the
// frontend reports which recommended item the user acted on, referencing
// the recommendation id the response carried.
type TrackRequest struct {
	RecommendationID uint64          `json:"recommendation_id"`
	Item             sessions.ItemID `json:"item_id"`
	// Event is "click" (default when empty) or "conversion".
	Event string `json:"event,omitempty"`
}

// TrackResponse reports how the feedback event was attributed.
type TrackResponse struct {
	Outcome  string `json:"outcome"`
	Rank     int    `json:"rank,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
}

// Track attributes one feedback event to its exposure. It is the code path
// behind POST /track and is also called directly by the in-process click
// harness. The boolean result is false when quality telemetry is disabled.
func (s *Server) Track(req TrackRequest) (TrackResponse, bool) {
	if s.quality == nil {
		return TrackResponse{}, false
	}
	at := s.quality.Attribute(req.RecommendationID, req.Item, req.Event == "conversion")
	return TrackResponse{Outcome: at.Outcome, Rank: at.Rank, Variant: at.Variant, Pipeline: at.Pipeline}, true
}

// Health assembles the replica's overload telemetry snapshot: in-flight
// requests, batcher pressure, cache effectiveness, burn state, and runtime
// pressure. It is the payload of GET /debug/health and the per-backend
// sections of the cluster proxy's /proxy/health.
func (s *Server) Health() obs.HealthSignal {
	h := obs.HealthSignal{
		Time:     s.cfg.Now(),
		InFlight: s.inflight.Load(),
	}
	if s.batcher != nil {
		h.BatchQueueDepth = int(s.batcher.depth.Load())
		h.BatchWaitMax10s = time.Duration(s.batchWaitMax.Max(10 * time.Second))
		h.BatchWaitMax1m = time.Duration(s.batchWaitMax.Max(time.Minute))
	}
	if s.cache != nil {
		if lookups, absorbed, _ := s.cacheWin.Sum(10 * time.Second); lookups > 0 {
			h.CacheHitRatio10s = float64(absorbed) / float64(lookups)
		}
		lookups, absorbed, _ := s.cacheWin.Sum(time.Minute)
		h.CacheLookups1m = lookups
		if lookups > 0 {
			h.CacheHitRatio1m = float64(absorbed) / float64(lookups)
		}
	}
	h.BurnRate, h.FastBurn, h.SlowBurn = s.slo.Burning()
	if s.quality != nil {
		d := s.quality.Drift()
		h.QualityDrift = d.Drifting
		h.QualityDriftReason = d.Reason
		h.QualityRankTV = d.RankTV
		h.QualityMRRRatio = d.MRRRatio
		h.QualityCTR = d.CTR
	}
	h.FillRuntime()
	return h
}

// FlushSlowLog emits the slow-query log's final summary; serving binaries
// call it during graceful shutdown.
func (s *Server) FlushSlowLog() { s.tracer.FlushSlowLog() }

// SwapIndex atomically replaces the session similarity index — the daily
// rollover after the offline job produces a fresh build. Evolving session
// state is unaffected; requests already executing complete against the old
// index, which (when Config.OwnIndex is set) is closed — unmapping a
// file-backed index — only once those requests drain.
func (s *Server) SwapIndex(idx *core.Index) error {
	gen, err := newGeneration(idx, s.cfg.Params, s.cfg.FallbackToPopular, s.cfg.OwnIndex, s.cfg.batchMax())
	if err != nil {
		return fmt.Errorf("serving: swapping index: %w", err)
	}
	gen.seq = s.genSeq.Add(1)
	old := s.active.Swap(gen)
	s.swaps.Add(1)
	if s.cache != nil {
		// Generation-tagged keys already make stale entries unreachable;
		// purging eagerly releases their memory at rollover time.
		s.cache.purge()
	}
	old.retire()
	return nil
}

// RecordIndexLoad reports how long the most recent index load took (initial
// startup load or a rollover reload), exported as
// serenade_index_load_seconds.
func (s *Server) RecordIndexLoad(d time.Duration) {
	s.loadNanos.Store(int64(d))
}

// Index returns the currently active index.
func (s *Server) Index() *core.Index { return s.active.Load().idx }

// Close releases the batcher, the session store, the idempotency table, and
// (when the server owns its index, Config.OwnIndex) the active index
// generation.
func (s *Server) Close() error {
	if s.batcher != nil {
		s.batcher.close()
	}
	if s.dedupe != nil {
		s.dedupe.Close()
	}
	err := s.store.Close()
	s.active.Load().retire()
	return err
}

// replayIdempotent returns the stored response body for an idempotency key
// seen before (within the TTL), if any. The body is appended to dst so the
// caller's scratch buffer absorbs the copy.
func (s *Server) replayIdempotent(key string, dst []byte) ([]byte, bool) {
	if key == "" || s.dedupe == nil {
		return nil, false
	}
	return s.dedupe.GetAppend(key, dst)
}

// storeIdempotent records a successful response body under its idempotency
// key so a duplicate delivery of the same logical request replays it
// instead of appending the click again.
func (s *Server) storeIdempotent(key string, body []byte) {
	if key == "" || s.dedupe == nil {
		return
	}
	if s.dedupe.Len() >= maxDedupeEntries {
		s.dedupe.Sweep()
		if s.dedupe.Len() >= maxDedupeEntries {
			return // fail open rather than grow without bound
		}
	}
	_ = s.dedupe.Put(key, body)
}

// Request is one session update + recommendation request from the frontend.
type Request struct {
	// SessionKey identifies the user session (an opaque cookie value).
	SessionKey string `json:"session_id"`
	// Item is the item the user just interacted with (the product detail
	// page being viewed).
	Item sessions.ItemID `json:"item_id"`
	// Consent reports whether the user allows their session history to be
	// used. Without consent the prediction is depersonalised: it uses only
	// the currently displayed item, and any stored history is discarded.
	Consent bool `json:"consent"`
}

// Response is the recommendation payload returned to the frontend.
type Response struct {
	Items []core.ScoredItem `json:"items"`
	// SessionLength is the stored session length after this update
	// (1 for depersonalised requests).
	SessionLength int `json:"session_length"`
	// RecommendationID identifies this exposure for POST /track click
	// attribution; 0 when quality telemetry is disabled.
	RecommendationID uint64 `json:"recommendation_id,omitempty"`
}

// Recommend handles one request end to end: session state update, VMIS-kNN
// prediction, business rules. It is the code path behind the HTTP handler
// and is also called directly by the in-process load and A/B harnesses.
func (s *Server) Recommend(req Request) (Response, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	sc := getScratch()
	defer putScratch(sc)
	sp := s.tracer.Start("recommend")
	resp, err := s.recommend(req, sp, sc)
	s.observeSpan(sp, err)
	// The pipeline's item list lives in the scratch; callers of the public
	// API own their Response, so hand them a private copy.
	if resp.Items != nil {
		resp.Items = append(make([]core.ScoredItem, 0, len(resp.Items)), resp.Items...)
	}
	return resp, err
}

// recommend is the traced request body. Stage attribution uses contiguous
// cuts — every segment between span start and the last cut lands in some
// stage — so a trace's stage durations account for (nearly all of) its
// total and tail latency is attributable, not mysterious.
func (s *Server) recommend(req Request, sp *obs.Span, sc *reqScratch) (Response, error) {
	if s.cfg.Trending != nil {
		s.cfg.Trending.Observe(req.Item, 1)
	}
	var evolving []sessions.ItemID
	if req.Consent {
		evolving = s.updateSession(req.SessionKey, req.Item, sc)
	} else {
		// Depersonalisation (§4.2): forget stored history immediately and
		// predict from the displayed item alone.
		s.depers.Inc()
		if err := s.store.Delete(req.SessionKey); err != nil {
			sp.Cut(obs.StageStore)
			return Response{}, err
		}
		evolving = append(sc.session[:0], req.Item)
		sc.session = evolving
	}
	sp.Cut(obs.StageStore)

	predictFrom := evolving
	if s.cfg.HistoryLength > 0 && len(predictFrom) > s.cfg.HistoryLength {
		predictFrom = predictFrom[len(predictFrom)-s.cfg.HistoryLength:]
	}

	// Over-fetch so that business-rule filtering can still fill the slot.
	slot := 2*s.cfg.Recommendations + 1

	var out []core.ScoredItem
	if s.cache != nil || s.batcher != nil {
		// Batched/cached path: the raw prediction arrives as a caller-owned
		// copy (cache hits, coalesced waits and batch lanes all hand out
		// private slices), so the business rules below may edit it in place.
		// Time queued in the batcher's wait window is split out of the
		// elapsed segment into batch_wait; the remainder — kernel work plus
		// any cache coalescing — lands in score (the candidates/score split
		// only exists on the unbatched path).
		raw, wait := s.predictShared(sp, predictFrom, slot, sc)
		if wait > 0 {
			sp.CutSplit(obs.StageBatchWait, wait, obs.StageScore)
		} else {
			sp.Cut(obs.StageScore)
		}
		out = s.applyRules(req.Item, raw)
		if len(out) > s.cfg.Recommendations {
			out = out[:s.cfg.Recommendations]
		}
	} else {
		gen := s.acquireGen()
		rec := gen.pool.Get().(*core.Recommender)
		neighbors := rec.NeighborSessions(predictFrom)
		sp.Cut(obs.StageCandidates)
		raw := rec.ScoreNeighbors(neighbors, slot)
		sp.Cut(obs.StageScore)
		items := s.applyRules(req.Item, raw)
		if len(items) > s.cfg.Recommendations {
			items = items[:s.cfg.Recommendations]
		}
		// Copy out of the recommender's reusable buffers before pooling it.
		out = append(sc.items[:0], items...)
		sc.items = out
		gen.pool.Put(rec)
		gen.release()
	}
	gen := s.active.Load()
	padApplied := false
	if len(out) < s.cfg.Recommendations && len(gen.popular) > 0 {
		padded := s.padWithPopular(out, req.Item, gen.popular)
		if len(padded) > len(out) {
			s.padded.Inc()
			padApplied = true
		}
		out = padded
	}
	resp := Response{Items: out, SessionLength: len(evolving)}
	if s.quality != nil {
		// The exposure pipeline is the path that shaped the list: consent
		// denial dominates (the whole prediction was depersonalised), then
		// popularity padding, then the plain kNN path.
		ln := s.qlKNN
		if !req.Consent {
			ln = s.qlDepers
		} else if padApplied {
			ln = s.qlPadded
		}
		resp.RecommendationID = s.quality.RecordExposure(ln, out, evolving, sp.RequestID)
	}
	sp.Cut(obs.StageFilter)

	return resp, nil
}

// predictShared computes the raw (uncut, pre-business-rules) prediction via
// the result cache and/or the request batcher, returning a slice the caller
// owns and may mutate plus the time the request spent queued in the batcher.
// It annotates sp with the cache outcome and records the lookup into the
// rolling hit-ratio window.
func (s *Server) predictShared(sp *obs.Span, predictFrom []sessions.ItemID, slot int, sc *reqScratch) ([]core.ScoredItem, time.Duration) {
	if s.cache == nil {
		items, _, wait := s.predictBatched(sp, predictFrom, slot, sc)
		return items, wait
	}
	genSeq := s.active.Load().seq
	key := appendCacheKey(sc.key[:0], s.kernelTail(predictFrom), slot, genSeq)
	sc.key = key
	e, outcome := s.cache.acquire(key)
	s.cacheWin.Add(1, boolLane(outcome != cacheLead), 0)
	if outcome != cacheLead {
		if outcome == cacheHit {
			sp.AddFlags(obs.FlagCacheHit)
		} else {
			sp.AddFlags(obs.FlagCacheWaiter)
		}
		<-e.done
		if e.items != nil {
			out := append(sc.items[:0], e.items...)
			sc.items = out
			return out, 0
		}
		// The leader abandoned the entry; compute independently.
		items, _, wait := s.predictBatched(sp, predictFrom, slot, sc)
		return items, wait
	}
	sp.AddFlags(obs.FlagCacheMiss | obs.FlagCacheLeader)
	filled := false
	defer func() {
		if !filled {
			s.cache.abandon(key, e)
		}
	}()
	items, usedSeq, wait := s.predictBatched(sp, predictFrom, slot, sc)
	// A rollover between key construction and execution means the value
	// belongs to a different generation than the key names: publish it to
	// the waiters but do not retain it.
	s.cache.fill(key, e, items, usedSeq == genSeq)
	filled = true
	return items, wait
}

// boolLane converts a flag to a windowed-counter lane increment.
func boolLane(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// predictBatched runs the kernel through the batcher when enabled, else
// directly against a pooled recommender. The returned slice is backed by the
// request scratch (so the caller owns and may mutate it); the second result
// is the index generation that served it, the third the batcher queue wait
// (0 when unbatched).
func (s *Server) predictBatched(sp *obs.Span, predictFrom []sessions.ItemID, slot int, sc *reqScratch) ([]core.ScoredItem, uint64, time.Duration) {
	if s.batcher != nil {
		job := getBatchJob(predictFrom, slot)
		s.batcher.submit(job)
		<-job.done
		sp.AddFlags(obs.FlagBatched)
		sp.BatchSize = job.batchSize
		// Copy out of the job's reusable buffer before recycling it.
		out := append(sc.items[:0], job.items...)
		sc.items = out
		seq, wait := job.genSeq, job.wait
		putBatchJob(job)
		return out, seq, wait
	}
	gen := s.acquireGen()
	rec := gen.pool.Get().(*core.Recommender)
	raw := rec.Recommend(predictFrom, slot)
	out := append(sc.items[:0], raw...)
	sc.items = out
	gen.pool.Put(rec)
	seq := gen.seq
	gen.release()
	return out, seq, 0
}

// kernelTail truncates an evolving session to the items the kernel actually
// uses — the cache-key normalisation that lets two long sessions with equal
// recent tails share an entry.
func (s *Server) kernelTail(items []sessions.ItemID) []sessions.ItemID {
	maxLen := s.cfg.Params.MaxSessionLength
	if maxLen <= 0 {
		maxLen = core.DefaultMaxSessionLength
	}
	if len(items) > maxLen {
		return items[len(items)-maxLen:]
	}
	return items
}

// observeSpan closes a request span: it freezes the total, feeds the
// request and per-stage histograms and the SLO tracker, counts errors, and
// hands the span to the tracer (ring sampling, tail retention, slow-query
// log). The span must not be used afterwards.
func (s *Server) observeSpan(sp *obs.Span, err error) {
	if err != nil {
		sp.SetError("store")
		s.errors.Inc()
		s.errStore.Inc()
	}
	sp.End()
	s.requests.Record(sp.Total)
	s.sloRecommend.Record(sp.Total, err != nil)
	for i, d := range sp.Stages {
		if d > 0 {
			s.stages[i].Record(d)
		}
	}
	s.tracer.Finish(sp)
}

// updateSession appends the item to the stored session and returns the new
// evolving session, backed by the request scratch. Both kvstore round trips
// run through reused buffers: the read appends into the scratch, the write's
// value is copied by the store.
func (s *Server) updateSession(key string, item sessions.ItemID, sc *reqScratch) []sessions.ItemID {
	evolving := sc.session[:0]
	if raw, ok := s.store.GetAppend(key, sc.kvBuf[:0]); ok {
		sc.kvBuf = raw
		evolving = appendSession(evolving, raw)
	}
	evolving = append(evolving, item)
	if len(evolving) > maxStoredSessionLength {
		// Slide in place instead of reslicing forward, so the scratch's
		// backing array does not creep and reallocate over many requests.
		n := copy(evolving, evolving[len(evolving)-maxStoredSessionLength:])
		evolving = evolving[:n]
	}
	sc.session = evolving
	sc.sessEnc = appendSessionEnc(sc.sessEnc[:0], evolving)
	// A failed write only loses session context for the next request —
	// the paper's design explicitly tolerates session-state loss — so the
	// current prediction proceeds regardless.
	_ = s.store.Put(key, sc.sessEnc)
	return evolving
}

// padWithPopular appends popularity-ranked fallback items (score zero, so
// ranking positions remain honest) until the slot is full. Dedup is a linear
// scan over the list under construction — it never exceeds the configured
// slot (a couple dozen items), where a scan beats allocating a set.
func (s *Server) padWithPopular(out []core.ScoredItem, current sessions.ItemID, popular []core.ScoredItem) []core.ScoredItem {
	for _, p := range popular {
		if len(out) >= s.cfg.Recommendations {
			break
		}
		if p.Item == current {
			continue
		}
		dup := false
		for _, it := range out {
			if it.Item == p.Item {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if s.cfg.Catalog != nil && !s.cfg.Catalog.Recommendable(p.Item) {
			continue
		}
		out = append(out, core.ScoredItem{Item: p.Item, Score: 0})
	}
	return out
}

// Explain attributes a recommended item's score to the neighbour sessions
// behind it, using the stored evolving session for key. The second result
// is false when there is no session state or the item receives no score.
func (s *Server) Explain(key string, item sessions.ItemID) (core.Explanation, bool) {
	evolving, ok := s.SessionState(key)
	if !ok {
		return core.Explanation{Item: item}, false
	}
	if s.cfg.HistoryLength > 0 && len(evolving) > s.cfg.HistoryLength {
		evolving = evolving[len(evolving)-s.cfg.HistoryLength:]
	}
	gen := s.acquireGen()
	defer gen.release()
	rec := gen.pool.Get().(*core.Recommender)
	ex, ok := rec.Explain(evolving, item)
	gen.pool.Put(rec)
	return ex, ok
}

// applyRules drops the currently displayed item and anything the catalog
// flags as unavailable or adult-only.
func (s *Server) applyRules(current sessions.ItemID, recs []core.ScoredItem) []core.ScoredItem {
	out := recs[:0]
	for _, r := range recs {
		if r.Item == current {
			continue
		}
		if s.cfg.Catalog != nil && !s.cfg.Catalog.Recommendable(r.Item) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// SessionState returns the stored evolving session for a key, for debugging
// endpoints and tests.
func (s *Server) SessionState(key string) ([]sessions.ItemID, bool) {
	raw, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	return decodeSession(raw), true
}

// SweepSessions evicts expired session state, mirroring the 30-minute
// RocksDB TTL; serving machines call it periodically. Expired idempotency
// entries and elapsed attribution windows (exposures finalising as
// non-clicks) ride along.
func (s *Server) SweepSessions() int {
	if s.dedupe != nil {
		s.dedupe.Sweep()
	}
	if s.quality != nil {
		s.quality.Sweep()
	}
	return s.store.Sweep()
}

// LatencyHistogram returns a snapshot of the server-side request latency
// distribution. (It is a merged copy of the striped recording state: safe
// to query at leisure, but later requests require a fresh snapshot.)
func (s *Server) LatencyHistogram() *metrics.Histogram { return s.requests.Snapshot() }

// StageStats is one pipeline stage's latency summary in Stats.
type StageStats struct {
	Stage       string        `json:"stage"`
	Count       uint64        `json:"count"`
	MeanLatency time.Duration `json:"mean_latency_ns"`
	P90Latency  time.Duration `json:"p90_latency_ns"`
	P995Latency time.Duration `json:"p995_latency_ns"`
}

// Stats summarises the server for the /metrics endpoint.
type Stats struct {
	Requests       uint64        `json:"requests"`
	Errors         uint64        `json:"errors"`
	MeanLatency    time.Duration `json:"mean_latency_ns"`
	P90Latency     time.Duration `json:"p90_latency_ns"`
	P995Latency    time.Duration `json:"p995_latency_ns"`
	ActiveSessions int           `json:"active_sessions"`
	StoreEvictions uint64        `json:"store_evictions"`
	IndexSessions  int           `json:"index_sessions"`
	IndexItems     int           `json:"index_items"`
	IndexSwaps     uint64        `json:"index_swaps"`
	// IndexBytes is the estimated footprint of the shared immutable index,
	// split into IndexHeapBytes (GC-scanned heap) and IndexMmapBytes
	// (file-backed pages of an mmap-loaded index — resident but
	// reclaimable, and never scanned by the collector).
	// RecommenderBytes is the per-goroutine footprint of one pooled query
	// kernel (probe table, flat score array, heaps — O(M + numItems)).
	// Capacity planning: total ≈ IndexBytes + pooled recommenders ×
	// RecommenderBytes per pod.
	IndexBytes       int64 `json:"index_bytes"`
	IndexHeapBytes   int64 `json:"index_heap_bytes"`
	IndexMmapBytes   int64 `json:"index_mmap_bytes"`
	RecommenderBytes int64 `json:"recommender_bytes"`
	// Result cache counters (all zero when the cache is disabled). Hits are
	// answered from memory, misses executed the kernel as cache leaders, and
	// coalesced requests waited on a concurrent identical request.
	CacheHits      uint64 `json:"cache_hits,omitempty"`
	CacheMisses    uint64 `json:"cache_misses,omitempty"`
	CacheCoalesced uint64 `json:"cache_coalesced,omitempty"`
	CacheEntries   int    `json:"cache_entries,omitempty"`
	// Batcher counters (zero when batching is disabled); BatchedRequests /
	// Batches is the realised mean batch size.
	Batches         uint64 `json:"batches,omitempty"`
	BatchedRequests uint64 `json:"batched_requests,omitempty"`
	BatcherDepth    int64  `json:"batcher_depth,omitempty"`
	// Stages breaks the request latency down by pipeline stage (stages
	// with no observations are omitted), attributing tail latency to
	// session-store access vs index lookup vs scoring vs serialization.
	Stages []StageStats `json:"stages,omitempty"`
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	gen := s.active.Load()
	heapBytes, mmapBytes := gen.idx.MemoryBreakdown()
	lat := s.requests.Snapshot()
	st := Stats{
		Requests:         lat.Count(),
		Errors:           s.errors.Value(),
		MeanLatency:      lat.Mean(),
		P90Latency:       lat.Percentile(90),
		P995Latency:      lat.Percentile(99.5),
		ActiveSessions:   s.store.Len(),
		StoreEvictions:   s.store.Metrics().Evictions,
		IndexSessions:    gen.idx.NumSessions(),
		IndexItems:       gen.idx.NumItems(),
		IndexSwaps:       s.swaps.Load(),
		IndexBytes:       heapBytes + mmapBytes,
		IndexHeapBytes:   heapBytes,
		IndexMmapBytes:   mmapBytes,
		RecommenderBytes: gen.recBytes,
	}
	if s.cache != nil {
		st.CacheHits = s.cache.hits.Load()
		st.CacheMisses = s.cache.misses.Load()
		st.CacheCoalesced = s.cache.coalesced.Load()
		st.CacheEntries = s.cache.len()
	}
	if s.batcher != nil {
		st.Batches = s.batcher.batches.Load()
		st.BatchedRequests = s.batcher.batchedRequests.Load()
		st.BatcherDepth = s.batcher.depth.Load()
	}
	for i := range s.stages {
		snap := s.stages[i].Snapshot()
		if snap.Count() == 0 {
			continue
		}
		st.Stages = append(st.Stages, StageStats{
			Stage:       obs.Stage(i).String(),
			Count:       snap.Count(),
			MeanLatency: snap.Mean(),
			P90Latency:  snap.Percentile(90),
			P995Latency: snap.Percentile(99.5),
		})
	}
	return st
}

// appendSessionEnc serialises an evolving session as varint-encoded item
// ids, appending to dst so hot callers reuse one buffer.
func appendSessionEnc(dst []byte, items []sessions.ItemID) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, it := range items {
		n := binary.PutUvarint(tmp[:], uint64(it))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// encodeSession is the allocating form of appendSessionEnc.
func encodeSession(items []sessions.ItemID) []byte {
	return appendSessionEnc(make([]byte, 0, len(items)*3), items)
}

// appendSession decodes varint-encoded session state, appending to dst.
func appendSession(dst []sessions.ItemID, raw []byte) []sessions.ItemID {
	for len(raw) > 0 {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return dst // torn state: keep the prefix
		}
		dst = append(dst, sessions.ItemID(v))
		raw = raw[n:]
	}
	return dst
}

// decodeSession is the allocating form of appendSession.
func decodeSession(raw []byte) []sessions.ItemID {
	return appendSession(nil, raw)
}
