package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/index"
	"serenade/internal/sessions"
	"serenade/internal/synth"
	"serenade/internal/trending"
)

type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testIndex(t testing.TB) *core.Index {
	t.Helper()
	ds, err := synth.Generate(synth.Small(77))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Params.M == 0 {
		cfg.Params = core.Params{M: 100, K: 50}
	}
	s, err := NewServer(testIndex(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// popularItem returns an item that certainly has neighbours in the index.
func popularItem() sessions.ItemID { return 0 }

func TestRecommendBasics(t *testing.T) {
	s := testServer(t, Config{})
	resp, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) == 0 {
		t.Fatal("no recommendations for a popular item")
	}
	if len(resp.Items) > DefaultRecommendations {
		t.Errorf("items = %d, want <= %d", len(resp.Items), DefaultRecommendations)
	}
	for i := 1; i < len(resp.Items); i++ {
		if resp.Items[i].Score > resp.Items[i-1].Score {
			t.Error("recommendations not in descending score order")
		}
	}
	for _, it := range resp.Items {
		if it.Item == popularItem() {
			t.Error("currently displayed item was recommended")
		}
	}
	if resp.SessionLength != 1 {
		t.Errorf("session length = %d, want 1", resp.SessionLength)
	}
}

func TestSessionStateAccumulates(t *testing.T) {
	s := testServer(t, Config{})
	s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true})
	s.Recommend(Request{SessionKey: "u", Item: 2, Consent: true})
	resp, _ := s.Recommend(Request{SessionKey: "u", Item: 3, Consent: true})
	if resp.SessionLength != 3 {
		t.Errorf("session length = %d, want 3", resp.SessionLength)
	}
	state, ok := s.SessionState("u")
	if !ok || !reflect.DeepEqual(state, []sessions.ItemID{1, 2, 3}) {
		t.Errorf("session state = %v,%v want [1 2 3]", state, ok)
	}
	// Other sessions are isolated.
	if _, ok := s.SessionState("other"); ok {
		t.Error("unknown session has state")
	}
}

func TestSessionStateCapped(t *testing.T) {
	s := testServer(t, Config{})
	for i := 0; i < maxStoredSessionLength+10; i++ {
		s.Recommend(Request{SessionKey: "u", Item: sessions.ItemID(i % 100), Consent: true})
	}
	state, _ := s.SessionState("u")
	if len(state) != maxStoredSessionLength {
		t.Errorf("stored session length = %d, want cap %d", len(state), maxStoredSessionLength)
	}
}

func TestDepersonalisation(t *testing.T) {
	s := testServer(t, Config{})
	s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true})
	s.Recommend(Request{SessionKey: "u", Item: 2, Consent: true})
	// Consent revoked: history must be dropped and prediction must use only
	// the current item.
	resp, err := s.Recommend(Request{SessionKey: "u", Item: popularItem(), Consent: false})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SessionLength != 1 {
		t.Errorf("depersonalised session length = %d, want 1", resp.SessionLength)
	}
	if _, ok := s.SessionState("u"); ok {
		t.Error("stored history survived consent revocation")
	}
}

func TestDepersonalisedEqualsSingleItemPrediction(t *testing.T) {
	s := testServer(t, Config{})
	s.Recommend(Request{SessionKey: "a", Item: 5, Consent: true})
	s.Recommend(Request{SessionKey: "a", Item: 9, Consent: true})
	deper, _ := s.Recommend(Request{SessionKey: "a", Item: popularItem(), Consent: false})
	fresh, _ := s.Recommend(Request{SessionKey: "never-seen", Item: popularItem(), Consent: true})
	if !reflect.DeepEqual(deper.Items, fresh.Items) {
		t.Error("depersonalised prediction differs from single-item prediction")
	}
}

func TestHistoryLengthVariants(t *testing.T) {
	// serenade-recent (HistoryLength=1) must equal a fresh single-item
	// prediction even mid-session.
	recent := testServer(t, Config{HistoryLength: 1})
	recent.Recommend(Request{SessionKey: "u", Item: 7, Consent: true})
	mid, _ := recent.Recommend(Request{SessionKey: "u", Item: popularItem(), Consent: true})
	fresh, _ := recent.Recommend(Request{SessionKey: "v", Item: popularItem(), Consent: true})
	if !reflect.DeepEqual(mid.Items, fresh.Items) {
		t.Error("serenade-recent used more than the most recent item")
	}
}

func TestBusinessRules(t *testing.T) {
	catalog := NewCatalog()
	s := testServer(t, Config{Catalog: catalog})
	resp, _ := s.Recommend(Request{SessionKey: "u", Item: popularItem(), Consent: true})
	if len(resp.Items) == 0 {
		t.Fatal("need recommendations to test filtering")
	}
	banned := resp.Items[0].Item
	adult := sessions.ItemID(0)
	if len(resp.Items) > 1 {
		adult = resp.Items[1].Item
	}
	catalog.SetAvailable(banned, false)
	catalog.SetAdult(adult, true)

	resp2, _ := s.Recommend(Request{SessionKey: "u2", Item: popularItem(), Consent: true})
	for _, it := range resp2.Items {
		if it.Item == banned {
			t.Error("unavailable item recommended")
		}
		if it.Item == adult {
			t.Error("adult item recommended")
		}
	}

	catalog.SetAvailable(banned, true)
	catalog.SetAdult(adult, false)
	resp3, _ := s.Recommend(Request{SessionKey: "u3", Item: popularItem(), Consent: true})
	found := false
	for _, it := range resp3.Items {
		if it.Item == banned {
			found = true
		}
	}
	if !found {
		t.Error("re-enabled item still filtered")
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := testServer(t, Config{Now: clock.Now})
	s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true})
	clock.Advance(31 * time.Minute)
	if n := s.SweepSessions(); n != 1 {
		t.Errorf("sweep removed %d, want 1", n)
	}
	resp, _ := s.Recommend(Request{SessionKey: "u", Item: 2, Consent: true})
	if resp.SessionLength != 1 {
		t.Errorf("session length after expiry = %d, want 1 (fresh session)", resp.SessionLength)
	}
}

func TestStatsCounters(t *testing.T) {
	s := testServer(t, Config{})
	for i := 0; i < 5; i++ {
		s.Recommend(Request{SessionKey: fmt.Sprintf("u%d", i), Item: 1, Consent: true})
	}
	st := s.Stats()
	if st.Requests != 5 {
		t.Errorf("requests = %d, want 5", st.Requests)
	}
	if st.ActiveSessions != 5 {
		t.Errorf("active sessions = %d, want 5", st.ActiveSessions)
	}
	if st.IndexSessions == 0 || st.IndexItems == 0 {
		t.Error("index stats empty")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := testServer(t, Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := s.Recommend(Request{
					SessionKey: fmt.Sprintf("u%d", w),
					Item:       sessions.ItemID(i % 500),
					Consent:    i%7 != 0,
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Stats().Requests != 8*200 {
		t.Errorf("requests = %d, want %d", s.Stats().Requests, 8*200)
	}
}

func TestSwapIndex(t *testing.T) {
	s := testServer(t, Config{})
	before := s.Stats()

	// Build a different index (fewer sessions) and roll over to it.
	ds, err := synth.Generate(synth.Small(123))
	if err != nil {
		t.Fatal(err)
	}
	ds = sessions.FromSessions("half", ds.Sessions[:len(ds.Sessions)/2])
	newIdx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapIndex(newIdx); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.IndexSessions == before.IndexSessions {
		t.Error("index swap did not take effect")
	}
	if after.IndexSwaps != 1 {
		t.Errorf("swaps = %d, want 1", after.IndexSwaps)
	}
	// Session state survives the rollover.
	s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true})
	resp, _ := s.Recommend(Request{SessionKey: "u", Item: 2, Consent: true})
	if resp.SessionLength != 2 {
		t.Errorf("session state lost across swap: length %d", resp.SessionLength)
	}
}

func TestSwapIndexRejectsIncompatible(t *testing.T) {
	s := testServer(t, Config{Params: core.Params{M: 100, K: 50}})
	ds, _ := synth.Generate(synth.Small(5))
	tiny, err := core.BuildIndex(ds, 10) // capacity below M
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapIndex(tiny); err == nil {
		t.Error("swap to an index with insufficient capacity accepted")
	}
	// The old index must still be serving.
	if _, err := s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true}); err != nil {
		t.Errorf("serving broken after rejected swap: %v", err)
	}
}

func TestSwapIndexUnderLoad(t *testing.T) {
	s := testServer(t, Config{})
	ds, _ := synth.Generate(synth.Small(321))
	other, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Recommend(Request{
					SessionKey: fmt.Sprintf("u%d", w),
					Item:       sessions.ItemID(i % 400),
					Consent:    true,
				}); err != nil {
					t.Errorf("request during swap failed: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		if err := s.SwapIndex(other); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Stats().IndexSwaps; got != 20 {
		t.Errorf("swaps = %d, want 20", got)
	}
}

// TestSwapIndexDrainsMmapGenerations is the rollover safety proof for the
// zero-copy index path: with Config.OwnIndex set, every generation replaced
// under concurrent query load must end up closed (its mapping released) —
// but only after its in-flight requests drain — while the active generation
// is never closed. Run under -race this also exercises the
// acquire/swap/retire memory ordering.
func TestSwapIndexDrainsMmapGenerations(t *testing.T) {
	ds, err := synth.Generate(synth.Small(88))
	if err != nil {
		t.Fatal(err)
	}
	built, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.srn")
	if err := index.SaveFileFormat(path, built, index.FormatV2); err != nil {
		t.Fatal(err)
	}
	load := func() *core.Index {
		idx, err := index.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	first := load()
	s, err := NewServer(first, Config{
		Params:   core.Params{M: 100, K: 50},
		OwnIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Recommend(Request{
					SessionKey: fmt.Sprintf("u%d", w),
					Item:       sessions.ItemID(i % 400),
					Consent:    true,
				}); err != nil {
					t.Errorf("request during swap failed: %v", err)
					return
				}
			}
		}(w)
	}

	// Roll over repeatedly to fresh mappings of the same file while the
	// queriers hammer the server.
	var replaced []*core.Index
	active := first
	for i := 0; i < 12; i++ {
		next := load()
		if err := s.SwapIndex(next); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		replaced = append(replaced, active)
		active = next
	}
	close(stop)
	wg.Wait()

	// With no requests in flight every retired generation must now be
	// closed; the last release fires drained() synchronously, so a short
	// grace loop is only paranoia against goroutine scheduling.
	deadline := time.Now().Add(5 * time.Second)
	for _, old := range replaced {
		for !old.Closed() {
			if time.Now().After(deadline) {
				t.Fatal("retired generation never closed after drain")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if active.Closed() {
		t.Fatal("active generation was closed while serving")
	}
	// Still serving from the live mapping.
	if _, err := s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true}); err != nil {
		t.Fatalf("serving after rollovers: %v", err)
	}
	// Server close retires the active generation too.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for !active.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("active generation not closed by server Close")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSwapIndexSharedIndexNotClosed: without OwnIndex the server must never
// close a replaced index — cluster.Pool replicas share one index across
// servers.
func TestSwapIndexSharedIndexNotClosed(t *testing.T) {
	shared := testIndex(t)
	s, err := NewServer(shared, Config{Params: core.Params{M: 100, K: 50}})
	if err != nil {
		t.Fatal(err)
	}
	other := testIndex(t)
	if err := s.SwapIndex(other); err != nil {
		t.Fatal(err)
	}
	if shared.Closed() {
		t.Error("server without OwnIndex closed a replaced shared index")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if other.Closed() {
		t.Error("server without OwnIndex closed the active shared index")
	}
}

func TestNewServerRejectsBadParams(t *testing.T) {
	if _, err := NewServer(testIndex(t), Config{Params: core.Params{M: 0, K: 5}}); err == nil {
		t.Error("invalid params accepted")
	}
}

// --- HTTP layer ---

func TestHTTPRecommendPost(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{SessionKey: "u1", Item: popularItem(), Consent: true})
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) == 0 {
		t.Error("empty recommendation list over HTTP")
	}
}

func TestHTTPRecommendGet(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/recommend?session_id=u2&item_id=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"missingSession", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/recommend?item_id=1")
		}},
		{"badItem", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/recommend?session_id=u&item_id=xyz")
		}},
		{"badJSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader([]byte("{nope")))
		}},
		{"unknownField", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader([]byte(`{"bogus":1}`)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestHTTPSessionDebugAndHealth(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/session/none"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", resp.StatusCode)
	}
	http.Get(ts.URL + "/v1/recommend?session_id=dbg&item_id=4")
	resp, _ := http.Get(ts.URL + "/v1/session/dbg")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session debug = %d", resp.StatusCode)
	}
	var out struct {
		Items []sessions.ItemID `json:"items"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if !reflect.DeepEqual(out.Items, []sessions.ItemID{4}) {
		t.Errorf("debug items = %v, want [4]", out.Items)
	}

	if resp, _ := http.Get(ts.URL + "/metrics"); resp.StatusCode != http.StatusOK {
		t.Errorf("metrics = %d", resp.StatusCode)
	}
}

func TestFallbackToPopular(t *testing.T) {
	s := testServer(t, Config{FallbackToPopular: true})
	// An item with no neighbours (beyond the catalog) still fills the slot.
	resp, err := s.Recommend(Request{SessionKey: "cold", Item: 9999, Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != DefaultRecommendations {
		t.Fatalf("fallback slot = %d items, want %d", len(resp.Items), DefaultRecommendations)
	}
	seen := map[sessions.ItemID]struct{}{}
	for _, it := range resp.Items {
		if it.Item == 9999 {
			t.Error("current item in fallback list")
		}
		if _, dup := seen[it.Item]; dup {
			t.Error("duplicate item in fallback list")
		}
		seen[it.Item] = struct{}{}
	}

	// Without the fallback, the same request yields nothing.
	bare := testServer(t, Config{})
	resp2, _ := bare.Recommend(Request{SessionKey: "cold", Item: 9999, Consent: true})
	if len(resp2.Items) != 0 {
		t.Errorf("unexpected recommendations without fallback: %d", len(resp2.Items))
	}
}

func TestFallbackRespectsCatalog(t *testing.T) {
	catalog := NewCatalog()
	s := testServer(t, Config{FallbackToPopular: true, Catalog: catalog})
	resp, _ := s.Recommend(Request{SessionKey: "u", Item: 9999, Consent: true})
	if len(resp.Items) == 0 {
		t.Fatal("no fallback items")
	}
	banned := resp.Items[0].Item
	catalog.SetAvailable(banned, false)
	resp2, _ := s.Recommend(Request{SessionKey: "u2", Item: 9999, Consent: true})
	for _, it := range resp2.Items {
		if it.Item == banned {
			t.Error("unavailable item in fallback list")
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Build up session state, pick a recommended item, explain it.
	resp, err := s.Recommend(Request{SessionKey: "ex", Item: popularItem(), Consent: true})
	if err != nil || len(resp.Items) == 0 {
		t.Fatalf("setup failed: %v (%d items)", err, len(resp.Items))
	}
	target := resp.Items[0].Item

	httpResp, err := http.Get(fmt.Sprintf("%s/v1/explain?session_id=ex&item_id=%d", ts.URL, target))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d", httpResp.StatusCode)
	}
	var ex core.Explanation
	if err := json.NewDecoder(httpResp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	if ex.Score <= 0 || len(ex.Contributions) == 0 {
		t.Errorf("empty explanation: %+v", ex)
	}

	// Unknown session and bad parameters.
	if r, _ := http.Get(ts.URL + "/v1/explain?session_id=nobody&item_id=1"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session explain = %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/explain?item_id=1"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing session_id = %d, want 400", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/explain?session_id=ex&item_id=abc"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad item_id = %d, want 400", r.StatusCode)
	}
}

func TestTrendingEndpoint(t *testing.T) {
	tracker := trending.New(time.Hour, nil)
	s := testServer(t, Config{Trending: tracker})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Clicks flow into the tracker through the recommendation path.
	for i := 0; i < 5; i++ {
		s.Recommend(Request{SessionKey: fmt.Sprintf("u%d", i), Item: 7, Consent: true})
	}
	s.Recommend(Request{SessionKey: "x", Item: 9, Consent: true})

	resp, err := http.Get(ts.URL + "/v1/trending?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trending status = %d", resp.StatusCode)
	}
	var out struct {
		Items []core.ScoredItem `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 || out.Items[0].Item != 7 {
		t.Errorf("trending = %v, want item 7 first", out.Items)
	}

	if r, _ := http.Get(ts.URL + "/v1/trending?n=abc"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n = %d, want 400", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/trending?new=xyz"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad new = %d, want 400", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/trending?new=1h"); r.StatusCode != http.StatusOK {
		t.Errorf("new=1h = %d, want 200", r.StatusCode)
	}

	// Disabled tracker -> 404.
	bare := testServer(t, Config{})
	ts2 := httptest.NewServer(bare.Handler())
	defer ts2.Close()
	if r, _ := http.Get(ts2.URL + "/v1/trending"); r.StatusCode != http.StatusNotFound {
		t.Errorf("disabled trending = %d, want 404", r.StatusCode)
	}
}

func TestHTTPAdminReload(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Ship a fresh (smaller) index build to disk and reload it.
	ds, _ := synth.Generate(synth.Small(222))
	ds = sessions.FromSessions("fresh", ds.Sessions[:500])
	newIdx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fresh.srn")
	if err := index.SaveFile(path, newIdx); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]string{"path": path})
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d, want 200", resp.StatusCode)
	}
	if got := s.Stats().IndexSessions; got != 500 {
		t.Errorf("index sessions after reload = %d, want 500", got)
	}

	// Bad requests.
	for _, bodyStr := range []string{"", "{}", `{"path":"/does/not/exist"}`} {
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewReader([]byte(bodyStr)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("reload with body %q succeeded", bodyStr)
		}
	}
}

func TestPrometheusMetrics(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true})
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	text := body.String()
	for _, want := range []string{
		"serenade_requests_total 1",
		"serenade_active_sessions 1",
		"serenade_index_swaps_total 0",
		"# TYPE serenade_request_latency_seconds histogram",
		`serenade_request_latency_seconds_bucket{le="+Inf"} 1`,
		"serenade_request_latency_seconds_count 1",
		`serenade_stage_latency_seconds_bucket{stage="score",le="+Inf"} 1`,
		"serenade_store_gets_total",
		"serenade_go_goroutines",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestEncodeDecodeSession(t *testing.T) {
	in := []sessions.ItemID{0, 1, 127, 128, 1 << 20}
	out := decodeSession(encodeSession(in))
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip = %v, want %v", out, in)
	}
	if decodeSession(nil) != nil {
		t.Error("decode of empty must be nil")
	}
}

func BenchmarkServerRecommend(b *testing.B) {
	idx := testIndex(b)
	s, err := NewServer(idx, Config{Params: core.Params{M: 500, K: 100}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Recommend(Request{
				SessionKey: fmt.Sprintf("u%d", i%64),
				Item:       sessions.ItemID(i % 500),
				Consent:    true,
			})
			i++
		}
	})
}

// TestStatsMemoryAccounting: the /metrics payload reports both the shared
// index footprint and the per-goroutine kernel footprint, and the kernel
// footprint tracks the active generation across an index swap.
func TestStatsMemoryAccounting(t *testing.T) {
	s := testServer(t, Config{})
	st := s.Stats()
	if st.IndexBytes <= 0 {
		t.Errorf("IndexBytes = %d, want > 0", st.IndexBytes)
	}
	if st.RecommenderBytes <= 0 {
		t.Errorf("RecommenderBytes = %d, want > 0", st.RecommenderBytes)
	}
	if st.IndexBytes != s.Index().MemoryFootprint() {
		t.Errorf("IndexBytes = %d, want index footprint %d", st.IndexBytes, s.Index().MemoryFootprint())
	}
	// A request must not disturb the accounting (pooled kernel round-trip).
	if _, err := s.Recommend(Request{SessionKey: "u", Item: 1, Consent: true}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RecommenderBytes; got < st.RecommenderBytes {
		t.Errorf("RecommenderBytes shrank after a request: %d -> %d", st.RecommenderBytes, got)
	}
}
