package serving

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"serenade/internal/obs"
	"serenade/internal/obs/slo"
)

// sloState decodes a /debug/slo endpoint entry.
type sloState struct {
	Endpoint string `json:"endpoint"`
	Windows  []struct {
		Window          string  `json:"window"`
		Total           uint64  `json:"total"`
		LatencyBurnRate float64 `json:"latency_burn_rate"`
	} `json:"windows"`
	FastBurn        bool    `json:"fast_burn"`
	SlowBurn        bool    `json:"slow_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

func fetchSLO(t *testing.T, url string) []sloState {
	t.Helper()
	resp, err := http.Get(url + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Endpoints []sloState `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Endpoints
}

// TestDebugSLOOverAndUnderBudget drives the same request load against two
// servers whose objectives differ, pushing one deterministically over budget
// (every request violates a 1ns threshold) and leaving the other untouched
// (no request violates a 10s threshold).
func TestDebugSLOOverAndUnderBudget(t *testing.T) {
	over := testServer(t, Config{SLOLatencyThreshold: time.Nanosecond})
	under := testServer(t, Config{SLOLatencyThreshold: 10 * time.Second})
	for i := 0; i < 50; i++ {
		for _, s := range []*Server{over, under} {
			if _, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true}); err != nil {
				t.Fatal(err)
			}
		}
	}

	tsOver := httptest.NewServer(over.Handler())
	defer tsOver.Close()
	eps := fetchSLO(t, tsOver.URL)
	if len(eps) != 1 || eps[0].Endpoint != "recommend" {
		t.Fatalf("/debug/slo endpoints = %+v", eps)
	}
	st := eps[0]
	if st.Windows[0].Total != 50 {
		t.Fatalf("1m window total = %d, want 50", st.Windows[0].Total)
	}
	if st.Windows[0].LatencyBurnRate < slo.FastBurnRate || !st.FastBurn {
		t.Fatalf("all-slow traffic did not push over budget: %+v", st)
	}
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v under 100x burn", st.BudgetRemaining)
	}

	tsUnder := httptest.NewServer(under.Handler())
	defer tsUnder.Close()
	st = fetchSLO(t, tsUnder.URL)[0]
	if st.Windows[0].LatencyBurnRate != 0 || st.FastBurn || st.SlowBurn {
		t.Fatalf("all-fast traffic burned budget: %+v", st)
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("budget remaining = %v with zero burn", st.BudgetRemaining)
	}
}

// TestHealthSignal checks the overload telemetry surface with every
// contributor enabled: batching, result cache, and the SLO engine.
func TestHealthSignal(t *testing.T) {
	s := testServer(t, Config{
		BatchWindow:         200 * time.Microsecond,
		ResultCacheSize:     64,
		SLOLatencyThreshold: time.Nanosecond, // everything burns
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s.Recommend(Request{SessionKey: "u", Item: popularItem(), Consent: false})
			}
		}(g)
	}
	wg.Wait()

	h := s.Health()
	if h.CacheLookups1m == 0 {
		t.Fatalf("health lost cache lookups: %+v", h)
	}
	if h.CacheHitRatio1m <= 0 || h.CacheHitRatio1m > 1 {
		t.Fatalf("20 identical depersonalised requests should mostly hit: ratio=%v", h.CacheHitRatio1m)
	}
	if h.BatchWaitMax1m <= 0 {
		t.Fatalf("batch wait watermark empty despite batched traffic: %+v", h)
	}
	if !h.FastBurn || h.BurnRate < slo.FastBurnRate {
		t.Fatalf("burn state missing from health: %+v", h)
	}
	if h.Goroutines == 0 || h.Time.IsZero() {
		t.Fatalf("runtime fields unfilled: %+v", h)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"in_flight", "batch_queue_depth", "batch_wait_max_1m_ns", "cache_hit_ratio_1m", "slo_burn_rate", "goroutines"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("/debug/health missing %q: %v", key, decoded)
		}
	}
}

// TestBatchWaitStageAttribution checks the batch_wait satellite: time spent
// in the wait-window batcher shows up as its own stage (instead of silently
// inflating score), the span carries the batched flag and batch size, and the
// partition invariant — stages sum to ≈ total — survives the split.
func TestBatchWaitStageAttribution(t *testing.T) {
	window := 2 * time.Millisecond
	s := testServer(t, Config{BatchWindow: window, TraceSampleEvery: 1})
	if _, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}

	// A lone request waits out the full gather window, so batch_wait must be
	// at least that.
	st := s.Stats()
	var found bool
	for _, sg := range st.Stages {
		if sg.Stage == "batch_wait" {
			found = true
			if sg.MeanLatency < window {
				t.Errorf("batch_wait mean %v < gather window %v", sg.MeanLatency, window)
			}
		}
	}
	if !found {
		t.Fatalf("no batch_wait stage in %+v", st.Stages)
	}

	spans := s.Tracer().Recent()
	if len(spans) != 1 {
		t.Fatalf("got %d traces, want 1", len(spans))
	}
	sp := spans[0]
	if sp.BatchSize != 1 {
		t.Errorf("batch size = %d, want 1", sp.BatchSize)
	}
	if names := sp.Flags.Names(); len(names) == 0 || names[len(names)-1] != "batched" {
		t.Errorf("span flags = %v, want batched", names)
	}
	if sp.Stages[obs.StageBatchWait] < window {
		t.Errorf("batch_wait stage = %v, want ≥%v", sp.Stages[obs.StageBatchWait], window)
	}
	if sum, total := sp.StageSum(), sp.Total; total-sum > total/10 {
		t.Errorf("stage sum %v misses >10%% of total %v after split", sum, total)
	}
}

// TestCacheFlagsInTraces drives two identical depersonalised requests through
// a cached server: the first is the single-flight leader (cache_miss), the
// second a hit, and /debug/traces reports both annotations.
func TestCacheFlagsInTraces(t *testing.T) {
	s := testServer(t, Config{ResultCacheSize: 64, TraceSampleEvery: 1})
	for i := 0; i < 2; i++ {
		if _, err := s.Recommend(Request{SessionKey: "u", Item: popularItem(), Consent: false}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var payload struct {
		Traces []struct {
			Flags []string `json:"flags"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(payload.Traces))
	}
	// Newest first: trace 0 is the second request.
	if len(payload.Traces[0].Flags) != 1 || payload.Traces[0].Flags[0] != "cache_hit" {
		t.Errorf("second request flags = %v, want [cache_hit]", payload.Traces[0].Flags)
	}
	want := []string{"cache_miss", "cache_leader"}
	if got := payload.Traces[1].Flags; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("first request flags = %v, want %v", got, want)
	}
}
