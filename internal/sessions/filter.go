package sessions

// Preprocessing filters of the session-rec evaluation pipeline that the
// paper's datasets pass through before training: dropping clicks on items
// with too little support, dropping sessions that became too short, and
// repeating both until a fixed point, since each filter can re-trigger the
// other.

// FilterConfig parameterises preprocessing.
type FilterConfig struct {
	// MinSessionLength drops sessions with fewer clicks (default 2 — a
	// next-item prediction needs context and target).
	MinSessionLength int
	// MinItemSupport drops clicks on items occurring in fewer sessions
	// (default 5, the session-rec convention).
	MinItemSupport int
	// MaxIterations bounds the fixed-point iteration (default 16; real
	// datasets converge in a handful of rounds).
	MaxIterations int
}

func (c FilterConfig) withDefaults() FilterConfig {
	if c.MinSessionLength <= 0 {
		c.MinSessionLength = 2
	}
	if c.MinItemSupport <= 0 {
		c.MinItemSupport = 5
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 16
	}
	return c
}

// Filter applies the preprocessing pipeline and returns the filtered
// dataset together with the number of iterations it took to converge.
func Filter(ds *Dataset, cfg FilterConfig) (*Dataset, int) {
	cfg = cfg.withDefaults()
	current := ds.Sessions
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		// Session-level support: count sessions per item (distinct).
		support := make(map[ItemID]int)
		for i := range current {
			seen := make(map[ItemID]struct{}, len(current[i].Items))
			for _, it := range current[i].Items {
				if _, dup := seen[it]; dup {
					continue
				}
				seen[it] = struct{}{}
				support[it]++
			}
		}

		changed := false
		next := make([]Session, 0, len(current))
		for i := range current {
			s := current[i]
			keepItems := make([]ItemID, 0, len(s.Items))
			keepTimes := make([]int64, 0, len(s.Times))
			for j, it := range s.Items {
				if support[it] < cfg.MinItemSupport {
					changed = true
					continue
				}
				keepItems = append(keepItems, it)
				keepTimes = append(keepTimes, s.Times[j])
			}
			if len(keepItems) < cfg.MinSessionLength {
				changed = true
				continue
			}
			next = append(next, Session{ID: s.ID, Items: keepItems, Times: keepTimes})
		}
		current = next
		if !changed {
			return FromSessions(ds.Name, current), iter
		}
	}
	return FromSessions(ds.Name, current), cfg.MaxIterations
}
