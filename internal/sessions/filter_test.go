package sessions

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterDropsRareItems(t *testing.T) {
	// Item 9 occurs in a single session; with MinItemSupport 2 its clicks
	// are removed.
	ds := Group("f", []Click{
		click(1, 1, 10), click(1, 2, 20),
		click(2, 1, 30), click(2, 2, 40),
		click(3, 1, 50), click(3, 9, 60),
	})
	out, iters := Filter(ds, FilterConfig{MinItemSupport: 2, MinSessionLength: 2})
	if iters < 1 {
		t.Fatalf("iterations = %d", iters)
	}
	for i := range out.Sessions {
		for _, it := range out.Sessions[i].Items {
			if it == 9 {
				t.Fatal("rare item survived filtering")
			}
		}
	}
	// Session 3 collapsed to one click and must be gone.
	if len(out.Sessions) != 2 {
		t.Errorf("sessions = %d, want 2", len(out.Sessions))
	}
}

func TestFilterCascades(t *testing.T) {
	// Removing item 9 (support 1) shrinks session 2 below the minimum,
	// whose removal drops item 8's support below the minimum, which then
	// shrinks session 1: the fixed point removes everything.
	ds := Group("cascade", []Click{
		click(1, 7, 10), click(1, 8, 20),
		click(2, 8, 30), click(2, 9, 40),
		click(3, 7, 50), click(3, 7, 55), click(3, 6, 60),
	})
	out, iters := Filter(ds, FilterConfig{MinItemSupport: 2, MinSessionLength: 2})
	if iters < 2 {
		t.Errorf("expected a multi-round cascade, converged in %d", iters)
	}
	// After the cascade: item 9 gone -> session 2 gone -> item 8 support 1
	// -> session 1 gone -> item 7 support 1 (only session 3) -> clicks on
	// 7 gone -> session 3 below min -> empty.
	if len(out.Sessions) != 0 {
		t.Errorf("sessions = %d, want 0 after full cascade", len(out.Sessions))
	}
}

func TestFilterNoOpWhenSupported(t *testing.T) {
	ds := Group("ok", []Click{
		click(1, 1, 10), click(1, 2, 20),
		click(2, 1, 30), click(2, 2, 40),
	})
	out, iters := Filter(ds, FilterConfig{MinItemSupport: 2, MinSessionLength: 2})
	if iters != 1 {
		t.Errorf("iterations = %d, want 1 (already clean)", iters)
	}
	if len(out.Sessions) != 2 || len(out.Clicks) != 4 {
		t.Errorf("clean dataset was modified: %d sessions %d clicks", len(out.Sessions), len(out.Clicks))
	}
}

func TestFilterEmptyDataset(t *testing.T) {
	out, _ := Filter(Group("e", nil), FilterConfig{})
	if len(out.Sessions) != 0 {
		t.Error("filter invented sessions")
	}
}

// TestFilterPropertyPostconditions: after filtering, every item meets the
// support threshold and every session the length threshold, regardless of
// input.
func TestFilterPropertyPostconditions(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var clicks []Click
		for s := 0; s < 40; s++ {
			n := 1 + rng.Intn(5)
			for j := 0; j < n; j++ {
				clicks = append(clicks, click(SessionID(s), ItemID(rng.Intn(25)), int64(100*s+j)))
			}
		}
		cfg := FilterConfig{MinItemSupport: 1 + rng.Intn(3), MinSessionLength: 2}
		out, _ := Filter(Group("p", clicks), cfg)

		support := map[ItemID]int{}
		for i := range out.Sessions {
			if out.Sessions[i].Len() < cfg.MinSessionLength {
				return false
			}
			seen := map[ItemID]struct{}{}
			for _, it := range out.Sessions[i].Items {
				if _, dup := seen[it]; dup {
					continue
				}
				seen[it] = struct{}{}
				support[it]++
			}
		}
		for _, n := range support {
			if n < cfg.MinItemSupport {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
