package sessions

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the CSV reader must never panic and must round-trip
// anything it accepts.
func FuzzReadCSV(f *testing.F) {
	f.Add("session_id,item_id,timestamp\n1,2,3\n")
	f.Add("session_id,item_id,timestamp\n")
	f.Add("session_id,item_id,timestamp\n1,2,3\n1,4,5\n2,2,9\n")
	f.Add("bogus")
	f.Add("session_id,item_id,timestamp\n-1,2,3\n")
	f.Add("session_id,item_id,timestamp\n99999999999999999999,2,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		// Accepted input must survive a write/read cycle unchanged.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatalf("WriteCSV of accepted dataset failed: %v", err)
		}
		again, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-read of written dataset failed: %v", err)
		}
		if len(again.Clicks) != len(ds.Clicks) {
			t.Fatalf("round trip changed click count: %d vs %d", len(again.Clicks), len(ds.Clicks))
		}
	})
}
