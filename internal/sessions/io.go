package sessions

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSV schema: header "session_id,item_id,timestamp" followed by one click
// per row, matching the layout of the public datasets the paper evaluates on
// (retailrocket, rsc15) after the standard session-rec preprocessing.

// WriteCSV writes the dataset's click log in CSV form.
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("session_id,item_id,timestamp\n"); err != nil {
		return err
	}
	var buf []byte
	for _, c := range ds.Clicks {
		buf = buf[:0]
		buf = strconv.AppendUint(buf, uint64(c.Session), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, uint64(c.Item), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, c.Time, 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a click log in the WriteCSV schema and groups it into a
// dataset named name.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<16))
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 3

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sessions: reading CSV header: %w", err)
	}
	if strings.TrimSpace(header[0]) != "session_id" {
		return nil, fmt.Errorf("sessions: unexpected CSV header %q", strings.Join(header, ","))
	}

	var clicks []Click
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sessions: reading CSV: %w", err)
		}
		line++
		sid, err := strconv.ParseUint(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sessions: line %d: bad session_id %q: %w", line, rec[0], err)
		}
		iid, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sessions: line %d: bad item_id %q: %w", line, rec[1], err)
		}
		ts, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sessions: line %d: bad timestamp %q: %w", line, rec[2], err)
		}
		clicks = append(clicks, Click{Session: SessionID(sid), Item: ItemID(iid), Time: ts})
	}
	return Group(name, clicks), nil
}

// SaveFile writes the dataset to path as CSV, gzip-compressed when the path
// ends in ".gz".
func SaveFile(path string, ds *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
		}()
		w = gz
	}
	return WriteCSV(w, ds)
}

// LoadFile reads a dataset from a CSV file written by SaveFile,
// transparently decompressing ".gz" paths. The dataset is named after the
// file's base name without extensions.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("sessions: opening gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".csv")
	return ReadCSV(r, name)
}
