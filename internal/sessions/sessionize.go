package sessions

import (
	"sort"
	"time"
)

// Event is one raw interaction from the platform's event log: unlike a
// Click it carries a user identifier instead of a session identifier —
// sessionization derives the sessions.
type Event struct {
	User string
	Item ItemID
	// Time is a unix timestamp in seconds.
	Time int64
}

// DefaultSessionGap is the inactivity threshold that closes a session, the
// same 30-minute window the serving layer uses for session-state expiry.
const DefaultSessionGap = 30 * time.Minute

// Sessionize groups a raw event log into sessions: events of the same user
// belong to the same session while consecutive events are at most gap
// apart; a longer pause starts a new session. Session ids are assigned
// densely in ascending session-timestamp order (ready for BuildIndex).
// gap <= 0 selects DefaultSessionGap.
func Sessionize(events []Event, gap time.Duration) *Dataset {
	if gap <= 0 {
		gap = DefaultSessionGap
	}
	gapSeconds := int64(gap / time.Second)

	byUser := make(map[string][]Event)
	for _, e := range events {
		byUser[e.User] = append(byUser[e.User], e)
	}

	var raw []Session
	for _, us := range byUser {
		sort.SliceStable(us, func(i, j int) bool { return us[i].Time < us[j].Time })
		var cur Session
		flush := func() {
			if len(cur.Items) > 0 {
				raw = append(raw, cur)
				cur = Session{}
			}
		}
		for _, e := range us {
			if n := len(cur.Times); n > 0 && e.Time-cur.Times[n-1] > gapSeconds {
				flush()
			}
			cur.Items = append(cur.Items, e.Item)
			cur.Times = append(cur.Times, e.Time)
		}
		flush()
	}

	// Dense ids in ascending session-time order; ties broken by content
	// order for determinism across map iteration.
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].Time() != raw[j].Time() {
			return raw[i].Time() < raw[j].Time()
		}
		return lessSessionContent(&raw[i], &raw[j])
	})
	for i := range raw {
		raw[i].ID = SessionID(i)
	}
	return FromSessions("sessionized", raw)
}

// lessSessionContent gives a deterministic order for equal-time sessions.
func lessSessionContent(a, b *Session) bool {
	if len(a.Items) != len(b.Items) {
		return len(a.Items) < len(b.Items)
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return a.Items[i] < b.Items[i]
		}
		if a.Times[i] != b.Times[i] {
			return a.Times[i] < b.Times[i]
		}
	}
	return false
}
