package sessions

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func ev(user string, item ItemID, t int64) Event { return Event{User: user, Item: item, Time: t} }

func TestSessionizeSplitsOnGap(t *testing.T) {
	const halfHour = 1800
	events := []Event{
		ev("alice", 1, 1000),
		ev("alice", 2, 1000+60),            // same session (1 min later)
		ev("alice", 3, 1000+60+halfHour+1), // new session (>30 min pause)
		ev("bob", 9, 1500),
	}
	ds := Sessionize(events, 30*time.Minute)
	if len(ds.Sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(ds.Sessions))
	}
	var aliceFirst *Session
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if len(s.Items) == 2 {
			aliceFirst = s
		}
	}
	if aliceFirst == nil || !reflect.DeepEqual(aliceFirst.Items, []ItemID{1, 2}) {
		t.Errorf("alice's first session wrong: %+v", ds.Sessions)
	}
}

func TestSessionizeSeparatesUsers(t *testing.T) {
	// Interleaved events of two users at identical times must form two
	// sessions.
	events := []Event{
		ev("a", 1, 100), ev("b", 2, 100),
		ev("a", 3, 110), ev("b", 4, 110),
	}
	ds := Sessionize(events, time.Hour)
	if len(ds.Sessions) != 2 {
		t.Fatalf("sessions = %d, want 2 (one per user)", len(ds.Sessions))
	}
	for i := range ds.Sessions {
		if ds.Sessions[i].Len() != 2 {
			t.Errorf("session %d length %d, want 2", i, ds.Sessions[i].Len())
		}
	}
}

func TestSessionizeDenseTimeOrderedIDs(t *testing.T) {
	events := []Event{
		ev("late", 5, 9000),
		ev("early", 6, 100),
		ev("mid", 7, 5000),
	}
	ds := Sessionize(events, time.Hour)
	for i := range ds.Sessions {
		if ds.Sessions[i].ID != SessionID(i) {
			t.Fatalf("ids not dense: %d at %d", ds.Sessions[i].ID, i)
		}
		if i > 0 && ds.Sessions[i].Time() < ds.Sessions[i-1].Time() {
			t.Fatal("sessions not time-ordered")
		}
	}
}

func TestSessionizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var events []Event
	users := []string{"u1", "u2", "u3", "u4"}
	for i := 0; i < 200; i++ {
		events = append(events, ev(users[rng.Intn(len(users))], ItemID(rng.Intn(20)), int64(rng.Intn(100000))))
	}
	a := Sessionize(events, 30*time.Minute)
	b := Sessionize(events, 30*time.Minute)
	if !reflect.DeepEqual(a.Sessions, b.Sessions) {
		t.Error("sessionization not deterministic (map iteration leaked)")
	}
}

func TestSessionizeEmptyAndDefaults(t *testing.T) {
	if ds := Sessionize(nil, 0); len(ds.Sessions) != 0 {
		t.Error("sessionized empty input to sessions")
	}
	// Default gap: a 29-minute pause keeps the session together.
	events := []Event{ev("u", 1, 0), ev("u", 2, 29*60)}
	if ds := Sessionize(events, 0); len(ds.Sessions) != 1 {
		t.Error("default 30-minute gap not applied")
	}
}

// TestSessionizePropertyInvariants: no clicks lost, every session's gaps
// within bound, per-user ordering preserved.
func TestSessionizePropertyInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []Event
		for i := 0; i < 120; i++ {
			events = append(events, Event{
				User: string(rune('a' + rng.Intn(5))),
				Item: ItemID(rng.Intn(15)),
				Time: int64(rng.Intn(50000)),
			})
		}
		gap := 20 * time.Minute
		ds := Sessionize(events, gap)
		total := 0
		for i := range ds.Sessions {
			s := &ds.Sessions[i]
			total += s.Len()
			for j := 1; j < len(s.Times); j++ {
				if s.Times[j] < s.Times[j-1] {
					return false // must be time-ordered
				}
				if s.Times[j]-s.Times[j-1] > int64(gap/time.Second) {
					return false // gap bound violated within a session
				}
			}
		}
		return total == len(events)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
