// Package sessions defines the click and session data model shared by every
// component of the system, along with dataset I/O, temporal train/test
// splitting, and the per-dataset statistics reported in Table 1 of the paper.
//
// A dataset is a set of click tuples (session_id, item_id, timestamp), the
// exact schema the paper's datasets use. Sessions group clicks by session id
// in timestamp order; the timestamp of a session is the timestamp of its most
// recent click, which is what the recency-based sampling of VS-kNN/VMIS-kNN
// keys on.
package sessions

import (
	"fmt"
	"sort"
)

// ItemID identifies an item in the catalog. Consecutive small integers are
// used throughout so that index structures can use dense arrays.
type ItemID uint32

// SessionID identifies a historical or evolving session. Historical session
// ids are consecutive integers so that the timestamp array t of the VMIS-kNN
// index can be a dense slice.
type SessionID uint32

// Click is one user-item interaction.
type Click struct {
	Session SessionID
	Item    ItemID
	// Time is a unix timestamp in seconds.
	Time int64
}

// Session is the grouped, time-ordered view of one session's clicks.
type Session struct {
	ID    SessionID
	Items []ItemID
	// Times holds the click timestamp for each entry of Items.
	Times []int64
}

// Time returns the session timestamp: the time of the most recent click.
// It returns 0 for an empty session.
func (s *Session) Time() int64 {
	if len(s.Times) == 0 {
		return 0
	}
	return s.Times[len(s.Times)-1]
}

// Len returns the number of clicks in the session.
func (s *Session) Len() int { return len(s.Items) }

// Dataset is a collection of clicks plus the grouped session view.
type Dataset struct {
	Name     string
	Clicks   []Click
	Sessions []Session
	// NumItems is one greater than the largest item id present, i.e. the
	// size of a dense item-indexed array.
	NumItems int
}

// Group builds the session view from a click log. Clicks are grouped by
// session id and ordered by timestamp within each session (ties broken by
// input order, which matches log order). Sessions are returned ordered by
// session id.
func Group(name string, clicks []Click) *Dataset {
	bySession := make(map[SessionID][]Click)
	maxItem := ItemID(0)
	for _, c := range clicks {
		bySession[c.Session] = append(bySession[c.Session], c)
		if c.Item > maxItem {
			maxItem = c.Item
		}
	}
	ids := make([]SessionID, 0, len(bySession))
	for id := range bySession {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	sessions := make([]Session, 0, len(ids))
	for _, id := range ids {
		cs := bySession[id]
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].Time < cs[j].Time })
		s := Session{
			ID:    id,
			Items: make([]ItemID, len(cs)),
			Times: make([]int64, len(cs)),
		}
		for i, c := range cs {
			s.Items[i] = c.Item
			s.Times[i] = c.Time
		}
		sessions = append(sessions, s)
	}
	numItems := 0
	if len(clicks) > 0 {
		numItems = int(maxItem) + 1
	}
	return &Dataset{Name: name, Clicks: clicks, Sessions: sessions, NumItems: numItems}
}

// FromSessions builds a Dataset directly from grouped sessions, deriving the
// flat click log.
func FromSessions(name string, sessions []Session) *Dataset {
	total := 0
	maxItem := ItemID(0)
	for i := range sessions {
		total += len(sessions[i].Items)
		for _, it := range sessions[i].Items {
			if it > maxItem {
				maxItem = it
			}
		}
	}
	clicks := make([]Click, 0, total)
	for i := range sessions {
		s := &sessions[i]
		for j := range s.Items {
			clicks = append(clicks, Click{Session: s.ID, Item: s.Items[j], Time: s.Times[j]})
		}
	}
	numItems := 0
	if total > 0 {
		numItems = int(maxItem) + 1
	}
	return &Dataset{Name: name, Clicks: clicks, Sessions: sessions, NumItems: numItems}
}

// Split holds a temporal train/test partition of a dataset.
type Split struct {
	Train *Dataset
	Test  *Dataset
}

// TemporalSplit partitions the dataset into historical sessions (train) and
// held-out evolving sessions (test) by session timestamp: sessions whose
// most recent click falls within the final testDays days of the dataset's
// time range form the test set. This mirrors the paper's evaluation setup
// ("we use the last day as held-out test set"). Items that never occur in
// the training set are removed from test sessions, since no collaborative
// method can predict unseen items; test sessions that drop below two clicks
// are discarded (a next-item prediction needs at least one context click and
// one target).
func TemporalSplit(ds *Dataset, testDays int) Split {
	if len(ds.Sessions) == 0 {
		return Split{
			Train: FromSessions(ds.Name+"-train", nil),
			Test:  FromSessions(ds.Name+"-test", nil),
		}
	}
	var maxTime int64
	for i := range ds.Sessions {
		if t := ds.Sessions[i].Time(); t > maxTime {
			maxTime = t
		}
	}
	cutoff := maxTime - int64(testDays)*24*3600

	var train, test []Session
	trainItems := make(map[ItemID]struct{})
	for i := range ds.Sessions {
		s := ds.Sessions[i]
		if s.Time() > cutoff {
			test = append(test, s)
			continue
		}
		train = append(train, s)
		for _, it := range s.Items {
			trainItems[it] = struct{}{}
		}
	}

	filtered := test[:0]
	for _, s := range test {
		keepItems := s.Items[:0:0]
		keepTimes := s.Times[:0:0]
		for j, it := range s.Items {
			if _, ok := trainItems[it]; ok {
				keepItems = append(keepItems, it)
				keepTimes = append(keepTimes, s.Times[j])
			}
		}
		if len(keepItems) >= 2 {
			filtered = append(filtered, Session{ID: s.ID, Items: keepItems, Times: keepTimes})
		}
	}
	return Split{
		Train: FromSessions(ds.Name+"-train", train),
		Test:  FromSessions(ds.Name+"-test", filtered),
	}
}

// Renumber returns a copy of the dataset whose session ids are consecutive
// integers starting at 0 in ascending session-timestamp order. The VMIS-kNN
// index requires dense session ids for its timestamp array t.
func Renumber(ds *Dataset) *Dataset {
	order := make([]int, len(ds.Sessions))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ds.Sessions[order[a]].Time() < ds.Sessions[order[b]].Time()
	})
	out := make([]Session, len(order))
	for newID, idx := range order {
		s := ds.Sessions[idx]
		out[newID] = Session{ID: SessionID(newID), Items: s.Items, Times: s.Times}
	}
	return FromSessions(ds.Name, out)
}

// Stats summarises a dataset in the shape of Table 1 of the paper.
type Stats struct {
	Name     string
	Clicks   int
	Sessions int
	Items    int
	Days     int
	// P25, P50, P75, P99 are percentiles of the clicks-per-session
	// distribution.
	P25, P50, P75, P99 int
}

// ComputeStats derives Table 1 statistics for a dataset.
func ComputeStats(ds *Dataset) Stats {
	st := Stats{Name: ds.Name, Clicks: len(ds.Clicks), Sessions: len(ds.Sessions)}
	items := make(map[ItemID]struct{})
	lengths := make([]int, 0, len(ds.Sessions))
	var minT, maxT int64
	first := true
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		lengths = append(lengths, s.Len())
		for _, it := range s.Items {
			items[it] = struct{}{}
		}
		for _, t := range s.Times {
			if first {
				minT, maxT = t, t
				first = false
				continue
			}
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
	}
	st.Items = len(items)
	if !first {
		st.Days = int((maxT-minT)/(24*3600)) + 1
	}
	sort.Ints(lengths)
	st.P25 = percentileInt(lengths, 0.25)
	st.P50 = percentileInt(lengths, 0.50)
	st.P75 = percentileInt(lengths, 0.75)
	st.P99 = percentileInt(lengths, 0.99)
	return st
}

// percentileInt returns the p-quantile (0 <= p <= 1) of sorted values using
// nearest-rank interpolation. It returns 0 for empty input.
func percentileInt(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String formats the statistics as one Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-18s clicks=%-10d sessions=%-9d items=%-8d days=%-4d p25=%d p50=%d p75=%d p99=%d",
		s.Name, s.Clicks, s.Sessions, s.Items, s.Days, s.P25, s.P50, s.P75, s.P99)
}
