package sessions

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func click(s SessionID, i ItemID, t int64) Click { return Click{Session: s, Item: i, Time: t} }

func TestGroupOrdersClicksWithinSession(t *testing.T) {
	ds := Group("t", []Click{
		click(2, 10, 300),
		click(1, 5, 100),
		click(2, 11, 100),
		click(1, 6, 200),
		click(2, 12, 200),
	})
	if len(ds.Sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ds.Sessions))
	}
	s1, s2 := ds.Sessions[0], ds.Sessions[1]
	if s1.ID != 1 || s2.ID != 2 {
		t.Fatalf("session ids = %d,%d want 1,2", s1.ID, s2.ID)
	}
	if !reflect.DeepEqual(s2.Items, []ItemID{11, 12, 10}) {
		t.Errorf("session 2 items = %v, want [11 12 10]", s2.Items)
	}
	if s2.Time() != 300 {
		t.Errorf("session 2 time = %d, want 300", s2.Time())
	}
	if ds.NumItems != 13 {
		t.Errorf("NumItems = %d, want 13", ds.NumItems)
	}
}

func TestGroupStableForEqualTimestamps(t *testing.T) {
	ds := Group("t", []Click{
		click(1, 7, 100),
		click(1, 8, 100),
		click(1, 9, 100),
	})
	if !reflect.DeepEqual(ds.Sessions[0].Items, []ItemID{7, 8, 9}) {
		t.Errorf("items = %v, want log order [7 8 9]", ds.Sessions[0].Items)
	}
}

func TestGroupEmpty(t *testing.T) {
	ds := Group("empty", nil)
	if len(ds.Sessions) != 0 || ds.NumItems != 0 {
		t.Errorf("empty dataset got sessions=%d items=%d", len(ds.Sessions), ds.NumItems)
	}
}

func TestFromSessionsRoundTrip(t *testing.T) {
	orig := Group("t", []Click{
		click(1, 5, 100), click(1, 6, 200), click(3, 2, 50),
	})
	again := FromSessions("t", orig.Sessions)
	if !reflect.DeepEqual(again.Sessions, orig.Sessions) {
		t.Error("FromSessions changed the session view")
	}
	if len(again.Clicks) != len(orig.Clicks) {
		t.Errorf("clicks = %d, want %d", len(again.Clicks), len(orig.Clicks))
	}
	if again.NumItems != orig.NumItems {
		t.Errorf("NumItems = %d, want %d", again.NumItems, orig.NumItems)
	}
}

func TestSessionTimeEmpty(t *testing.T) {
	var s Session
	if s.Time() != 0 {
		t.Errorf("empty session Time() = %d, want 0", s.Time())
	}
}

func TestTemporalSplit(t *testing.T) {
	day := int64(24 * 3600)
	ds := Group("t", []Click{
		// old sessions (train)
		click(1, 1, 1*day), click(1, 2, 1*day+10),
		click(2, 2, 2*day), click(2, 3, 2*day+10),
		// recent session (test), items 2,3 known, item 9 unseen in train
		click(3, 2, 9*day), click(3, 9, 9*day+5), click(3, 3, 9*day+10),
		// recent session that collapses below 2 known items -> dropped
		click(4, 9, 9*day+20), click(4, 1, 9*day+30),
	})
	sp := TemporalSplit(ds, 1)
	if len(sp.Train.Sessions) != 2 {
		t.Fatalf("train sessions = %d, want 2", len(sp.Train.Sessions))
	}
	if len(sp.Test.Sessions) != 1 {
		t.Fatalf("test sessions = %d, want 1", len(sp.Test.Sessions))
	}
	got := sp.Test.Sessions[0]
	if !reflect.DeepEqual(got.Items, []ItemID{2, 3}) {
		t.Errorf("test items = %v, want [2 3] (unseen item filtered)", got.Items)
	}
}

func TestTemporalSplitEmpty(t *testing.T) {
	sp := TemporalSplit(Group("e", nil), 1)
	if len(sp.Train.Sessions) != 0 || len(sp.Test.Sessions) != 0 {
		t.Error("split of empty dataset must be empty")
	}
}

func TestRenumberOrdersByTime(t *testing.T) {
	ds := Group("t", []Click{
		click(10, 1, 500),
		click(20, 2, 100),
		click(30, 3, 300),
	})
	rn := Renumber(ds)
	var times []int64
	for i := range rn.Sessions {
		if rn.Sessions[i].ID != SessionID(i) {
			t.Fatalf("session %d has id %d, want dense ids", i, rn.Sessions[i].ID)
		}
		times = append(times, rn.Sessions[i].Time())
	}
	if !sort.SliceIsSorted(times, func(a, b int) bool { return times[a] < times[b] }) {
		t.Errorf("renumbered sessions not in ascending time order: %v", times)
	}
}

func TestComputeStats(t *testing.T) {
	day := int64(24 * 3600)
	var clicks []Click
	// 4 sessions of lengths 2, 2, 4, 8 over 3 days.
	lens := []int{2, 2, 4, 8}
	for sid, n := range lens {
		for j := 0; j < n; j++ {
			clicks = append(clicks, click(SessionID(sid), ItemID(j), int64(sid%3)*day+int64(j)))
		}
	}
	st := ComputeStats(Group("t", clicks))
	if st.Clicks != 16 || st.Sessions != 4 || st.Items != 8 {
		t.Errorf("got clicks=%d sessions=%d items=%d", st.Clicks, st.Sessions, st.Items)
	}
	if st.Days != 3 {
		t.Errorf("days = %d, want 3", st.Days)
	}
	if st.P25 != 2 || st.P50 != 4 {
		t.Errorf("p25=%d p50=%d, want 2 4 (nearest-rank)", st.P25, st.P50)
	}
	if st.P99 != 8 {
		t.Errorf("p99 = %d, want 8", st.P99)
	}
	if !strings.Contains(st.String(), "clicks=16") {
		t.Errorf("String() = %q missing clicks", st.String())
	}
}

func TestPercentileIntEdges(t *testing.T) {
	if got := percentileInt(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %d, want 0", got)
	}
	if got := percentileInt([]int{7}, 0.99); got != 7 {
		t.Errorf("percentile of singleton = %d, want 7", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var clicks []Click
	for s := 0; s < 50; s++ {
		n := rng.Intn(6) + 2
		for j := 0; j < n; j++ {
			clicks = append(clicks, click(SessionID(s), ItemID(rng.Intn(100)), int64(1000*s+10*j)))
		}
	}
	ds := Group("rt", clicks)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(back.Sessions, ds.Sessions) {
		t.Error("CSV round trip changed sessions")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, data string }{
		{"empty", ""},
		{"badHeader", "foo,bar,baz\n1,2,3\n"},
		{"badSession", "session_id,item_id,timestamp\nx,2,3\n"},
		{"badItem", "session_id,item_id,timestamp\n1,x,3\n"},
		{"badTime", "session_id,item_id,timestamp\n1,2,x\n"},
		{"wrongFields", "session_id,item_id,timestamp\n1,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.data), "t"); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestSaveLoadFileGzip(t *testing.T) {
	dir := t.TempDir()
	ds := Group("disk", []Click{click(1, 2, 3), click(1, 4, 5)})
	for _, name := range []string{"d.csv", "d.csv.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if !reflect.DeepEqual(back.Sessions, ds.Sessions) {
			t.Errorf("%s: round trip changed sessions", name)
		}
		if back.Name != "d" {
			t.Errorf("%s: name = %q, want d", name, back.Name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}

// TestGroupPropertyPreservesClicks: grouping never loses or invents clicks,
// for arbitrary input.
func TestGroupPropertyPreservesClicks(t *testing.T) {
	prop := func(raw []uint16) bool {
		var clicks []Click
		for i, v := range raw {
			clicks = append(clicks, Click{
				Session: SessionID(v % 17),
				Item:    ItemID(v % 31),
				Time:    int64(i % 13),
			})
		}
		ds := Group("p", clicks)
		total := 0
		for i := range ds.Sessions {
			s := &ds.Sessions[i]
			if len(s.Items) != len(s.Times) {
				return false
			}
			for j := 1; j < len(s.Times); j++ {
				if s.Times[j] < s.Times[j-1] {
					return false
				}
			}
			total += len(s.Items)
		}
		return total == len(clicks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSplitPropertyDisjointAndTemporal: train and test session sets are
// disjoint and every train session is older than the cutoff implied by the
// newest session.
func TestSplitPropertyDisjointAndTemporal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var clicks []Click
		day := int64(24 * 3600)
		for s := 0; s < 30; s++ {
			base := int64(rng.Intn(10)) * day
			for j := 0; j < 2+rng.Intn(4); j++ {
				clicks = append(clicks, click(SessionID(s), ItemID(rng.Intn(20)), base+int64(j)))
			}
		}
		ds := Group("p", clicks)
		sp := TemporalSplit(ds, 2)
		var maxTime int64
		for i := range ds.Sessions {
			if tm := ds.Sessions[i].Time(); tm > maxTime {
				maxTime = tm
			}
		}
		cutoff := maxTime - 2*day
		seen := map[SessionID]bool{}
		for i := range sp.Train.Sessions {
			s := &sp.Train.Sessions[i]
			if s.Time() > cutoff {
				return false
			}
			seen[s.ID] = true
		}
		for i := range sp.Test.Sessions {
			if seen[sp.Test.Sessions[i].ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
