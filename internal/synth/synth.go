// Package synth generates synthetic e-commerce clickstream datasets.
//
// The paper evaluates on proprietary bol.com datasets (ecom-1m … ecom-180m)
// and two public dumps (retailrocket, rsc15) that are not redistributable.
// This generator is the substitute documented in DESIGN.md: it produces click
// logs whose statistics match what the paper reports as relevant in Table 1
// (session length percentiles, item counts, day ranges) and whose sequential
// structure gives nearest-neighbour methods genuine signal.
//
// The generative model is a latent-interest Markov process: items are
// partitioned into interest clusters; a session starts in a cluster drawn
// from a Zipf popularity distribution and at each step either stays in its
// cluster (probability PStay), moves to an adjacent cluster on a ring
// (modelling drifting interest), or teleports to a random cluster. Within a
// cluster, items are drawn from a cluster-local Zipf distribution, and with
// probability RevisitProb the session re-clicks an earlier item (users
// returning to a product detail page). Sessions in the same cluster
// therefore share items, which is exactly the neighbourhood structure
// session-kNN methods exploit.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"serenade/internal/sessions"
)

// Config parameterises dataset generation.
type Config struct {
	Name        string
	NumSessions int
	NumItems    int
	Days        int
	// Clusters is the number of latent interest clusters.
	Clusters int
	// ZipfS is the Zipf skew (>1) for item popularity within a cluster and
	// for cluster popularity.
	ZipfS float64
	// PStay is the probability of staying in the current cluster per step.
	PStay float64
	// RevisitProb is the probability of re-clicking an earlier session item.
	RevisitProb float64
	// LengthMu and LengthSigma parameterise the lognormal session-length
	// distribution (lengths are max(2, round(exp(N(mu, sigma))))).
	LengthMu, LengthSigma float64
	// MaxLength caps session length.
	MaxLength int
	Seed      int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumSessions <= 0:
		return fmt.Errorf("synth: NumSessions must be positive, got %d", c.NumSessions)
	case c.NumItems < 2:
		return fmt.Errorf("synth: NumItems must be at least 2, got %d", c.NumItems)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days must be positive, got %d", c.Days)
	case c.Clusters <= 0 || c.Clusters > c.NumItems:
		return fmt.Errorf("synth: Clusters must be in [1, NumItems], got %d", c.Clusters)
	case c.ZipfS <= 1:
		return fmt.Errorf("synth: ZipfS must exceed 1, got %g", c.ZipfS)
	case c.PStay < 0 || c.PStay > 1:
		return fmt.Errorf("synth: PStay must be in [0,1], got %g", c.PStay)
	case c.RevisitProb < 0 || c.RevisitProb > 1:
		return fmt.Errorf("synth: RevisitProb must be in [0,1], got %g", c.RevisitProb)
	case c.MaxLength < 2:
		return fmt.Errorf("synth: MaxLength must be at least 2, got %d", c.MaxLength)
	}
	return nil
}

// baseTime anchors all generated timestamps (2020-09-13T12:26:40Z); absolute
// values are irrelevant, only ordering and day spans matter.
const baseTime = int64(1_600_000_000)

// Generate produces a dataset for the configuration. Generation is
// deterministic for a fixed Seed.
func Generate(c Config) (*sessions.Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	clusterOf := make([]int, 0, c.Clusters)  // cluster -> first item index
	clusterLen := make([]int, 0, c.Clusters) // cluster -> number of items
	per := c.NumItems / c.Clusters
	rem := c.NumItems % c.Clusters
	start := 0
	for k := 0; k < c.Clusters; k++ {
		n := per
		if k < rem {
			n++
		}
		clusterOf = append(clusterOf, start)
		clusterLen = append(clusterLen, n)
		start += n
	}

	clusterZipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Clusters-1))
	itemZipfs := make([]*rand.Zipf, c.Clusters)
	for k := range itemZipfs {
		if clusterLen[k] > 0 {
			itemZipfs[k] = rand.NewZipf(rng, c.ZipfS, 1, uint64(clusterLen[k]-1))
		}
	}

	sessionsOut := make([]sessions.Session, 0, c.NumSessions)
	daySeconds := int64(24 * 3600)
	for sid := 0; sid < c.NumSessions; sid++ {
		length := sampleLength(rng, c)
		day := int64(sid % c.Days) // spread sessions evenly over days
		// Diurnal curve: most traffic in the evening. Mixture of a broad
		// daytime component and an evening peak.
		var secOfDay int64
		if rng.Float64() < 0.6 {
			secOfDay = int64(18*3600 + rng.Intn(4*3600)) // 18:00-22:00 peak
		} else {
			secOfDay = int64(8*3600 + rng.Intn(12*3600)) // 08:00-20:00 broad
		}
		t := baseTime + day*daySeconds + secOfDay

		cluster := int(clusterZipf.Uint64())
		items := make([]sessions.ItemID, 0, length)
		times := make([]int64, 0, length)
		for j := 0; j < length; j++ {
			if j > 0 {
				t += 10 + int64(rng.ExpFloat64()*40) // dwell time
				r := rng.Float64()
				switch {
				case r < c.PStay:
					// stay in cluster
				case r < c.PStay+(1-c.PStay)*0.7:
					// drift to an adjacent cluster on the ring
					if rng.Intn(2) == 0 {
						cluster = (cluster + 1) % c.Clusters
					} else {
						cluster = (cluster - 1 + c.Clusters) % c.Clusters
					}
				default:
					cluster = int(clusterZipf.Uint64())
				}
			}
			if j > 0 && rng.Float64() < c.RevisitProb {
				items = append(items, items[rng.Intn(len(items))])
				times = append(times, t)
				continue
			}
			local := int(itemZipfs[cluster].Uint64())
			items = append(items, sessions.ItemID(clusterOf[cluster]+local))
			times = append(times, t)
		}
		sessionsOut = append(sessionsOut, sessions.Session{
			ID:    sessions.SessionID(sid),
			Items: items,
			Times: times,
		})
	}
	// Renumber so session ids ascend with session time, which the VMIS-kNN
	// index requires.
	return sessions.Renumber(sessions.FromSessions(c.Name, sessionsOut)), nil
}

func sampleLength(rng *rand.Rand, c Config) int {
	l := int(math.Round(math.Exp(rng.NormFloat64()*c.LengthSigma + c.LengthMu)))
	if l < 2 {
		l = 2
	}
	if l > c.MaxLength {
		l = c.MaxLength
	}
	return l
}

// profiles holds scaled-down stand-ins for each dataset in Table 1. Sizes
// are reduced to laptop scale while preserving the relative ordering of the
// datasets and the session-length distribution shape (public datasets have a
// shorter tail, p99 ≈ 19; the proprietary ones a longer one, p99 ≈ 36-39).
var profiles = map[string]Config{
	"retailrocket-sim": {
		Name: "retailrocket-sim", NumSessions: 4_000, NumItems: 3_000, Days: 10,
		Clusters: 60, ZipfS: 1.3, PStay: 0.88, RevisitProb: 0.06,
		LengthMu: 1.05, LengthSigma: 0.72, MaxLength: 80, Seed: 1,
	},
	"rsc15-sim": {
		Name: "rsc15-sim", NumSessions: 40_000, NumItems: 4_000, Days: 30,
		Clusters: 80, ZipfS: 1.25, PStay: 0.88, RevisitProb: 0.06,
		LengthMu: 1.1, LengthSigma: 0.72, MaxLength: 80, Seed: 2,
	},
	"ecom-1m-sim": {
		Name: "ecom-1m-sim", NumSessions: 12_000, NumItems: 8_000, Days: 30,
		Clusters: 150, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.08,
		LengthMu: 1.35, LengthSigma: 0.95, MaxLength: 200, Seed: 3,
	},
	"ecom-60m-sim": {
		Name: "ecom-60m-sim", NumSessions: 60_000, NumItems: 20_000, Days: 29,
		Clusters: 300, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.08,
		LengthMu: 1.4, LengthSigma: 1.0, MaxLength: 200, Seed: 4,
	},
	"ecom-90m-sim": {
		Name: "ecom-90m-sim", NumSessions: 90_000, NumItems: 25_000, Days: 91,
		Clusters: 350, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.08,
		LengthMu: 1.4, LengthSigma: 1.0, MaxLength: 200, Seed: 5,
	},
	"ecom-180m-sim": {
		Name: "ecom-180m-sim", NumSessions: 180_000, NumItems: 35_000, Days: 91,
		Clusters: 450, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.08,
		LengthMu: 1.42, LengthSigma: 1.0, MaxLength: 200, Seed: 6,
	},
}

// Profile returns the named dataset profile.
func Profile(name string) (Config, error) {
	c, ok := profiles[name]
	if !ok {
		return Config{}, fmt.Errorf("synth: unknown profile %q (known: %v)", name, Profiles())
	}
	return c, nil
}

// Profiles lists the available profile names in Table 1 order.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return profileRank(names[i]) < profileRank(names[j]) })
	return names
}

func profileRank(name string) int {
	order := []string{"retailrocket-sim", "rsc15-sim", "ecom-1m-sim", "ecom-60m-sim", "ecom-90m-sim", "ecom-180m-sim"}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// Small returns a small, fast configuration suitable for tests and examples.
func Small(seed int64) Config {
	return Config{
		Name: "small", NumSessions: 2_000, NumItems: 500, Days: 10,
		Clusters: 25, ZipfS: 1.3, PStay: 0.85, RevisitProb: 0.05,
		LengthMu: 1.2, LengthSigma: 0.8, MaxLength: 60, Seed: seed,
	}
}
