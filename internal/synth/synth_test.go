package synth

import (
	"testing"
	"testing/quick"

	"serenade/internal/sessions"
)

func TestValidate(t *testing.T) {
	base := Small(1)
	if err := base.Validate(); err != nil {
		t.Fatalf("Small config invalid: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.NumSessions = 0 },
		func(c *Config) { c.NumItems = 1 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Clusters = c.NumItems + 1 },
		func(c *Config) { c.ZipfS = 1.0 },
		func(c *Config) { c.PStay = 1.5 },
		func(c *Config) { c.RevisitProb = -0.1 },
		func(c *Config) { c.MaxLength = 1 },
	}
	for i, m := range mutate {
		c := base
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clicks) != len(b.Clicks) {
		t.Fatalf("click counts differ: %d vs %d", len(a.Clicks), len(b.Clicks))
	}
	for i := range a.Clicks {
		if a.Clicks[i] != b.Clicks[i] {
			t.Fatalf("click %d differs: %v vs %v", i, a.Clicks[i], b.Clicks[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(Small(1))
	b, _ := Generate(Small(2))
	same := len(a.Clicks) == len(b.Clicks)
	if same {
		identical := true
		for i := range a.Clicks {
			if a.Clicks[i] != b.Clicks[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c := Small(7)
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sessions) != c.NumSessions {
		t.Fatalf("sessions = %d, want %d", len(ds.Sessions), c.NumSessions)
	}
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if s.Len() < 2 || s.Len() > c.MaxLength {
			t.Fatalf("session %d length %d outside [2,%d]", i, s.Len(), c.MaxLength)
		}
		if s.ID != sessions.SessionID(i) {
			t.Fatalf("session ids not dense: got %d at %d", s.ID, i)
		}
		for _, it := range s.Items {
			if int(it) >= c.NumItems {
				t.Fatalf("item %d out of range %d", it, c.NumItems)
			}
		}
		if i > 0 && ds.Sessions[i].Time() < ds.Sessions[i-1].Time() {
			t.Fatal("sessions not ordered by time after renumbering")
		}
	}
	st := sessions.ComputeStats(ds)
	if st.Days > c.Days+1 {
		t.Errorf("day span %d exceeds configured %d", st.Days, c.Days)
	}
	if st.P25 < 2 {
		t.Errorf("p25 = %d, want >= 2", st.P25)
	}
}

// TestLengthDistributionShape verifies the Table 1 shape: short median,
// long tail, on the ecom profile settings.
func TestLengthDistributionShape(t *testing.T) {
	c := Small(3)
	c.NumSessions = 8000
	c.LengthMu, c.LengthSigma, c.MaxLength = 1.35, 0.95, 200
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	st := sessions.ComputeStats(ds)
	if st.P50 < 2 || st.P50 > 7 {
		t.Errorf("p50 = %d, want a short median like the paper's 2-4", st.P50)
	}
	if st.P99 < 12 {
		t.Errorf("p99 = %d, want a long tail (>12)", st.P99)
	}
	if st.P99 <= st.P75 || st.P75 < st.P50 || st.P50 < st.P25 {
		t.Errorf("percentiles not monotone: %d %d %d %d", st.P25, st.P50, st.P75, st.P99)
	}
}

// TestPopularitySkew verifies the Zipf popularity: the most popular 10% of
// items should receive well over 10% of the clicks.
func TestPopularitySkew(t *testing.T) {
	ds, err := Generate(Small(11))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[sessions.ItemID]int)
	for _, c := range ds.Clicks {
		counts[c.Item]++
	}
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	// partial selection: count clicks on the top decile
	total := 0
	for _, n := range freqs {
		total += n
	}
	// sort descending
	for i := 1; i < len(freqs); i++ {
		for j := i; j > 0 && freqs[j] > freqs[j-1]; j-- {
			freqs[j], freqs[j-1] = freqs[j-1], freqs[j]
		}
	}
	top := len(freqs) / 10
	if top == 0 {
		top = 1
	}
	topClicks := 0
	for _, n := range freqs[:top] {
		topClicks += n
	}
	if share := float64(topClicks) / float64(total); share < 0.3 {
		t.Errorf("top-decile click share = %.2f, want >= 0.3 (Zipf skew)", share)
	}
}

// TestSequentialSignal verifies that consecutive clicks within a session
// share a cluster far more often than random item pairs would, i.e. the
// generator produces learnable sequential structure.
func TestSequentialSignal(t *testing.T) {
	c := Small(5)
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	per := c.NumItems / c.Clusters
	clusterOf := func(it sessions.ItemID) int { return int(it) / per }
	same, pairs := 0, 0
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		for j := 1; j < len(s.Items); j++ {
			pairs++
			if clusterOf(s.Items[j]) == clusterOf(s.Items[j-1]) {
				same++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no consecutive pairs generated")
	}
	if share := float64(same) / float64(pairs); share < 0.5 {
		t.Errorf("same-cluster consecutive share = %.2f, want >= 0.5", share)
	}
}

func TestProfiles(t *testing.T) {
	names := Profiles()
	if len(names) != 6 {
		t.Fatalf("profiles = %d, want 6", len(names))
	}
	if names[0] != "retailrocket-sim" || names[5] != "ecom-180m-sim" {
		t.Errorf("profile order = %v, want Table 1 order", names)
	}
	for _, n := range names {
		c, err := Profile(n)
		if err != nil {
			t.Fatalf("Profile(%s): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", n, err)
		}
	}
	if _, err := Profile("nope"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

// TestProfileSizesOrdered checks the stand-in datasets preserve the paper's
// relative size ordering.
func TestProfileSizesOrdered(t *testing.T) {
	names := []string{"ecom-1m-sim", "ecom-60m-sim", "ecom-90m-sim", "ecom-180m-sim"}
	prev := 0
	for _, n := range names {
		c, _ := Profile(n)
		if c.NumSessions <= prev {
			t.Errorf("profile %s sessions %d not larger than previous %d", n, c.NumSessions, prev)
		}
		prev = c.NumSessions
	}
}

func TestGeneratePropertyValidSessions(t *testing.T) {
	prop := func(seed int64) bool {
		c := Small(seed)
		c.NumSessions = 100
		ds, err := Generate(c)
		if err != nil {
			return false
		}
		for i := range ds.Sessions {
			s := &ds.Sessions[i]
			if len(s.Items) != len(s.Times) || len(s.Items) < 2 {
				return false
			}
			for j := 1; j < len(s.Times); j++ {
				if s.Times[j] < s.Times[j-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
