// Package trending tracks exponentially-decayed item popularity from the
// live click stream. The paper's design pushes cold-start handling out of
// Serenade: the daily index build means new items are invisible to
// VMIS-kNN for up to a day, and "a separate, specialised system for
// presenting new and trending items" covers them (§4.1). This package is
// that system's core: an online popularity tracker whose scores halve every
// configured half-life, plus a new-item view for the cold-start slot.
package trending

import (
	"math"
	"sort"
	"sync"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Tracker maintains decayed popularity scores. Safe for concurrent use.
type Tracker struct {
	halfLife time.Duration
	now      func() time.Time

	mu    sync.Mutex
	items map[sessions.ItemID]*state
}

type state struct {
	score      float64
	lastUpdate time.Time
	firstSeen  time.Time
}

// New creates a tracker whose scores halve every halfLife (e.g. 2h for a
// fast-moving "trending now" slot). now defaults to time.Now.
func New(halfLife time.Duration, now func() time.Time) *Tracker {
	if halfLife <= 0 {
		halfLife = 2 * time.Hour
	}
	if now == nil {
		now = time.Now
	}
	return &Tracker{
		halfLife: halfLife,
		now:      now,
		items:    make(map[sessions.ItemID]*state),
	}
}

// decayFactor computes 0.5^(dt/halfLife).
func (t *Tracker) decayFactor(dt time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(t.halfLife))
}

// Observe records n interactions with an item.
func (t *Tracker) Observe(item sessions.ItemID, n int) {
	if n <= 0 {
		return
	}
	nowT := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.items[item]
	if !ok {
		s = &state{firstSeen: nowT, lastUpdate: nowT}
		t.items[item] = s
	}
	s.score = s.score*t.decayFactor(nowT.Sub(s.lastUpdate)) + float64(n)
	s.lastUpdate = nowT
}

// Score returns the item's current decayed popularity.
func (t *Tracker) Score(item sessions.ItemID) float64 {
	nowT := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.items[item]
	if !ok {
		return 0
	}
	return s.score * t.decayFactor(nowT.Sub(s.lastUpdate))
}

// Top returns the n most popular items right now, ties toward smaller ids.
func (t *Tracker) Top(n int) []core.ScoredItem {
	return t.top(n, func(*state) bool { return true })
}

// TopNew returns the n most popular items among those first seen within
// maxAge — the "new and trending" slot for items the daily index cannot
// know yet.
func (t *Tracker) TopNew(n int, maxAge time.Duration) []core.ScoredItem {
	cutoff := t.now().Add(-maxAge)
	return t.top(n, func(s *state) bool { return !s.firstSeen.Before(cutoff) })
}

func (t *Tracker) top(n int, keep func(*state) bool) []core.ScoredItem {
	if n <= 0 {
		return nil
	}
	nowT := t.now()
	t.mu.Lock()
	out := make([]core.ScoredItem, 0, len(t.items))
	for item, s := range t.items {
		if !keep(s) {
			continue
		}
		score := s.score * t.decayFactor(nowT.Sub(s.lastUpdate))
		if score > 0 {
			out = append(out, core.ScoredItem{Item: item, Score: score})
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Compact drops items whose decayed score fell below minScore and reports
// how many were removed; run periodically to bound memory.
func (t *Tracker) Compact(minScore float64) int {
	nowT := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for item, s := range t.items {
		if s.score*t.decayFactor(nowT.Sub(s.lastUpdate)) < minScore {
			delete(t.items, item)
			removed++
		}
	}
	return removed
}

// Len reports the number of tracked items.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}
