package trending

import (
	"math"
	"sync"
	"testing"
	"time"

	"serenade/internal/sessions"
)

type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Unix(1_600_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestScoreDecaysByHalfLife(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 8)
	if got := tr.Score(1); got != 8 {
		t.Fatalf("fresh score = %v, want 8", got)
	}
	ck.Advance(time.Hour)
	if got := tr.Score(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("score after one half-life = %v, want 4", got)
	}
	ck.Advance(2 * time.Hour)
	if got := tr.Score(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("score after three half-lives = %v, want 1", got)
	}
}

func TestObserveAccumulatesWithDecay(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 4)
	ck.Advance(time.Hour) // decays to 2
	tr.Observe(1, 1)      // 2 + 1
	if got := tr.Score(1); math.Abs(got-3) > 1e-9 {
		t.Errorf("score = %v, want 3", got)
	}
}

func TestTopOrdering(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 5)
	tr.Observe(2, 10)
	tr.Observe(3, 1)
	top := tr.Top(2)
	if len(top) != 2 || top[0].Item != 2 || top[1].Item != 1 {
		t.Errorf("top = %v, want [2 1]", top)
	}
	if tr.Top(0) != nil {
		t.Error("Top(0) must be nil")
	}
}

func TestTrendDisplacesOldPopularity(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 100) // yesterday's bestseller
	ck.Advance(12 * time.Hour)
	tr.Observe(2, 5) // trending now
	top := tr.Top(1)
	if top[0].Item != 2 {
		t.Errorf("top = %v, want the fresh trend (item 2) over the decayed bestseller", top)
	}
}

func TestTopNewFiltersByFirstSeen(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 100) // old item
	ck.Advance(3 * time.Hour)
	tr.Observe(2, 1) // brand new item
	tr.Observe(1, 1) // old item clicked again (firstSeen unchanged)
	fresh := tr.TopNew(10, time.Hour)
	if len(fresh) != 1 || fresh[0].Item != 2 {
		t.Errorf("TopNew = %v, want only item 2", fresh)
	}
}

func TestCompact(t *testing.T) {
	ck := newClock()
	tr := New(time.Hour, ck.Now)
	tr.Observe(1, 1)
	tr.Observe(2, 100)
	ck.Advance(10 * time.Hour) // item 1 decays to ~0.001
	if removed := tr.Compact(0.01); removed != 1 {
		t.Errorf("compact removed %d, want 1", removed)
	}
	if tr.Len() != 1 {
		t.Errorf("tracked items = %d, want 1", tr.Len())
	}
	if tr.Score(1) != 0 {
		t.Error("compacted item still scored")
	}
}

func TestObserveEdgeCases(t *testing.T) {
	tr := New(0, nil) // defaults
	tr.Observe(1, 0)  // no-op
	tr.Observe(1, -5) // no-op
	if tr.Len() != 0 {
		t.Error("non-positive observations created state")
	}
	if tr.Score(42) != 0 {
		t.Error("unknown item scored")
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := New(time.Hour, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(sessions.ItemID(i%20), 1)
				tr.Top(5)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 20 {
		t.Errorf("tracked items = %d, want 20", tr.Len())
	}
}
