// Package vsknn implements the VS-kNN baseline (Algorithm 1 of the paper)
// the way the paper's §5.1.3 microbenchmark describes it: historical data is
// held in hashmaps, and each query first materialises the m most recent
// sessions sharing at least one item with the evolving session before
// computing their similarities — the two-phase plan whose large intermediate
// results VMIS-kNN's joint execution avoids.
//
// The similarity and scoring semantics (decay π, match weight λ, the §3
// simplifications of the scoring function) are identical to internal/core,
// so that both implementations return the same recommendations; only the
// execution strategy differs. This is the baseline of Figure 3(a), bottom.
package vsknn

import (
	"math"
	"sort"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Baseline answers VS-kNN queries from hashmap-held historical data.
// It is immutable after construction and safe for concurrent use (queries
// allocate their intermediates per call — deliberately, as that is the
// design point being benchmarked).
type Baseline struct {
	itemSessions map[sessions.ItemID][]sessions.SessionID // ascending id (= ascending time)
	times        []int64
	sessionItems [][]sessions.ItemID
	// idf is flat over the dense item-id space: the scoring phase shares
	// core's flat-accumulator idiom so that the Fig. 3a ablation compares
	// the two-phase *algorithm* against VMIS-kNN, not hashmap overhead.
	idf         []float64
	numItems    int
	numSessions int
}

// New builds the baseline store from a dataset with dense, time-ascending
// session ids (use sessions.Renumber first).
func New(ds *sessions.Dataset) *Baseline {
	b := &Baseline{
		itemSessions: make(map[sessions.ItemID][]sessions.SessionID),
		times:        make([]int64, len(ds.Sessions)),
		sessionItems: make([][]sessions.ItemID, len(ds.Sessions)),
		idf:          make([]float64, ds.NumItems),
		numItems:     ds.NumItems,
		numSessions:  len(ds.Sessions),
	}
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		b.times[i] = s.Time()
		seen := make(map[sessions.ItemID]struct{}, len(s.Items))
		unique := make([]sessions.ItemID, 0, len(s.Items))
		for _, it := range s.Items {
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			unique = append(unique, it)
			b.itemSessions[it] = append(b.itemSessions[it], sessions.SessionID(i))
		}
		b.sessionItems[i] = unique
	}
	for it, list := range b.itemSessions {
		if int(it) < len(b.idf) {
			b.idf[it] = idf(b.numSessions, len(list))
		}
	}
	return b
}

func idf(total, df int) float64 {
	if df == 0 {
		return 0
	}
	return math.Log(float64(total) / float64(df))
}

// NeighborSessions runs Algorithm 1 lines 5-7: gather every historical
// session sharing an item with the evolving session, take the recency-based
// sample of size m, then keep the k most similar.
func (b *Baseline) NeighborSessions(evolving []sessions.ItemID, p core.Params) []core.Neighbor {
	p = normalize(p)
	s := truncate(evolving, p.MaxSessionLength)
	length := len(s)

	// Distinct evolving items with their most recent 1-based positions.
	type posItem struct {
		item sessions.ItemID
		pos  int
	}
	var items []posItem
	dup := make(map[sessions.ItemID]struct{}, length)
	for pos := length; pos >= 1; pos-- {
		it := s[pos-1]
		if _, ok := dup[it]; ok {
			continue
		}
		dup[it] = struct{}{}
		items = append(items, posItem{item: it, pos: pos})
	}

	// Phase 1: materialise the full candidate set H_s (every session that
	// shares at least one item), then sample the m most recent.
	candidateSet := make(map[sessions.SessionID]struct{})
	for _, pi := range items {
		for _, sid := range b.itemSessions[pi.item] {
			candidateSet[sid] = struct{}{}
		}
	}
	candidates := make([]sessions.SessionID, 0, len(candidateSet))
	for sid := range candidateSet {
		candidates = append(candidates, sid)
	}
	// Most recent first; ids ascend with time, and ids are unique, so
	// descending id is descending (time, id).
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	if len(candidates) > p.M {
		candidates = candidates[:p.M]
	}

	// Phase 2: similarity of each sampled session via set intersection.
	neighbors := make([]core.Neighbor, 0, len(candidates))
	for _, sid := range candidates {
		inSession := make(map[sessions.ItemID]struct{}, len(b.sessionItems[sid]))
		for _, it := range b.sessionItems[sid] {
			inSession[it] = struct{}{}
		}
		score := 0.0
		maxPos := 0
		for _, pi := range items {
			if _, shared := inSession[pi.item]; !shared {
				continue
			}
			score += p.Decay(pi.pos, length)
			if pi.pos > maxPos {
				maxPos = pi.pos
			}
		}
		if score > 0 {
			neighbors = append(neighbors, core.Neighbor{
				ID: sid, Score: score, MaxPos: maxPos, Time: b.times[sid],
			})
		}
	}

	// Phase 3: k most similar, ties toward the more recent session —
	// the same ordering as core's bounded heap.
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Score != neighbors[j].Score {
			return neighbors[i].Score > neighbors[j].Score
		}
		return neighbors[i].Time > neighbors[j].Time
	})
	if len(neighbors) > p.K {
		neighbors = neighbors[:p.K]
	}
	return neighbors
}

// Recommend scores the items of the neighbour sessions exactly as
// internal/core does and returns the top n.
func (b *Baseline) Recommend(evolving []sessions.ItemID, n int, p core.Params) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	p = normalize(p)
	neighbors := b.NeighborSessions(evolving, p)
	// Flat accumulator over the dense item-id space with a touched-list
	// (same idiom as internal/core's kernel). Allocated per call to keep
	// the Baseline safe for concurrent use; the per-element cost is a plain
	// array write instead of a hashmap probe.
	scores := make([]float64, b.numItems)
	touched := make([]sessions.ItemID, 0, 256)
	for _, nb := range neighbors {
		w := p.MatchWeight(nb.MaxPos) * nb.Score
		if w == 0 {
			continue
		}
		for _, item := range b.sessionItems[nb.ID] {
			v := w * b.idf[item]
			if v == 0 {
				continue
			}
			if scores[item] == 0 {
				touched = append(touched, item)
			}
			scores[item] += v
		}
	}
	if len(touched) == 0 {
		return nil
	}
	out := make([]core.ScoredItem, 0, len(touched))
	for _, item := range touched {
		if score := scores[item]; score > 0 {
			out = append(out, core.ScoredItem{Item: item, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func truncate(evolving []sessions.ItemID, max int) []sessions.ItemID {
	if len(evolving) > max {
		return evolving[len(evolving)-max:]
	}
	return evolving
}

func normalize(p core.Params) core.Params {
	if p.MaxSessionLength <= 0 {
		p.MaxSessionLength = core.DefaultMaxSessionLength
	}
	if p.Decay == nil {
		p.Decay = core.LinearDecay
	}
	if p.MatchWeight == nil {
		p.MatchWeight = core.LinearMatchWeight
	}
	return p
}
