package vsknn

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// randomDataset builds sessions with strictly increasing timestamps so that
// recency tie-breaking is deterministic across implementations.
func randomDataset(rng *rand.Rand, n, vocab int) *sessions.Dataset {
	var ss []sessions.Session
	tick := int64(1000)
	for i := 0; i < n; i++ {
		length := 2 + rng.Intn(6)
		items := make([]sessions.ItemID, length)
		times := make([]int64, length)
		for j := range items {
			items[j] = sessions.ItemID(rng.Intn(vocab))
			tick++
			times[j] = tick
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	return sessions.FromSessions("rand", ss)
}

func TestToyExampleMatchesPaper(t *testing.T) {
	var ss []sessions.Session
	for i, items := range [][]sessions.ItemID{{2, 4}, {9, 8, 7}} {
		times := make([]int64, len(items))
		for j := range times {
			times[j] = int64(1000 + 100*i + j)
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	b := New(sessions.FromSessions("toy", ss))
	p := core.Params{M: 10, K: 10}
	neighbors := b.NeighborSessions([]sessions.ItemID{1, 2, 4}, p)
	if len(neighbors) != 1 {
		t.Fatalf("neighbors = %d, want 1", len(neighbors))
	}
	if want := 5.0 / 3.0; math.Abs(neighbors[0].Score-want) > 1e-12 {
		t.Errorf("similarity = %v, want 5/3", neighbors[0].Score)
	}
	if neighbors[0].MaxPos != 3 {
		t.Errorf("maxPos = %d, want 3", neighbors[0].MaxPos)
	}
}

func TestRecommendEmpty(t *testing.T) {
	b := New(sessions.FromSessions("e", nil))
	if got := b.Recommend([]sessions.ItemID{1}, 5, core.Params{M: 5, K: 5}); got != nil {
		t.Errorf("Recommend on empty history = %v, want nil", got)
	}
	if got := b.Recommend(nil, 5, core.Params{M: 5, K: 5}); got != nil {
		t.Errorf("Recommend(nil) = %v, want nil", got)
	}
}

func TestRecencySample(t *testing.T) {
	// Sessions 0..4 all contain item 1; with M=2 the sample is {3,4}.
	var ss []sessions.Session
	for i := 0; i < 5; i++ {
		ss = append(ss, sessions.Session{
			ID:    sessions.SessionID(i),
			Items: []sessions.ItemID{1},
			Times: []int64{int64(1000 + i)},
		})
	}
	b := New(sessions.FromSessions("r", ss))
	neighbors := b.NeighborSessions([]sessions.ItemID{1}, core.Params{M: 2, K: 2})
	ids := map[sessions.SessionID]bool{}
	for _, nb := range neighbors {
		ids[nb.ID] = true
	}
	if !ids[3] || !ids[4] || len(ids) != 2 {
		t.Errorf("sample = %v, want the most recent {3,4}", ids)
	}
}

// TestEquivalenceWithVMISkNN is the central correctness property: on random
// datasets with unique timestamps, the two-phase VS-kNN baseline and the
// index-based VMIS-kNN return identical neighbour sets (same similarities,
// same match positions) and identical recommendations. VMIS-kNN is "an
// adaptation" of VS-kNN (§3) — the algorithms must agree; only the execution
// strategy differs.
func TestEquivalenceWithVMISkNN(t *testing.T) {
	for _, cfg := range []struct {
		name           string
		n, vocab, m, k int
	}{
		{"smallSampleForcesEviction", 300, 30, 10, 5},
		{"largeSample", 200, 60, 100, 20},
		{"kEqualsM", 150, 40, 25, 25},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.n + cfg.vocab)))
			ds := randomDataset(rng, cfg.n, cfg.vocab)
			baseline := New(ds)
			idx, err := core.BuildIndex(ds, 0)
			if err != nil {
				t.Fatal(err)
			}
			p := core.Params{M: cfg.m, K: cfg.k}
			vmis, err := core.NewRecommender(idx, p)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 150; trial++ {
				length := 1 + rng.Intn(6)
				evolving := make([]sessions.ItemID, length)
				for i := range evolving {
					evolving[i] = sessions.ItemID(rng.Intn(cfg.vocab))
				}

				na := baseline.NeighborSessions(evolving, p)
				nb := vmis.NeighborSessions(evolving)
				sortNeighbors(na)
				nbCopy := append([]core.Neighbor(nil), nb...)
				sortNeighbors(nbCopy)
				if !reflect.DeepEqual(na, nbCopy) {
					t.Fatalf("neighbour sets differ for %v:\nVS:   %+v\nVMIS: %+v", evolving, na, nbCopy)
				}

				ra := baseline.Recommend(evolving, 21, p)
				rb := vmis.Recommend(evolving, 21)
				if len(ra) == 0 && len(rb) == 0 {
					continue
				}
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("recommendations differ for %v:\nVS:   %v\nVMIS: %v", evolving, ra, rb)
				}
			}
		})
	}
}

func sortNeighbors(ns []core.Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

func BenchmarkVSkNNRecommend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 5000, 500)
	baseline := New(ds)
	p := core.Params{M: 500, K: 100}
	queries := make([][]sessions.ItemID, 256)
	for i := range queries {
		length := 1 + rng.Intn(6)
		q := make([]sessions.ItemID, length)
		for j := range q {
			q[j] = sessions.ItemID(rng.Intn(500))
		}
		queries[i] = q
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Recommend(queries[i%len(queries)], 21, p)
	}
}
