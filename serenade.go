// Package serenade is a session-based recommender system: a Go
// implementation of "Serenade — Low-Latency Session-Based Recommendation in
// e-Commerce at Scale" (SIGMOD 2022).
//
// The package is the public facade over the library's internals. The
// typical lifecycle mirrors the paper's production deployment:
//
//	ds, _ := serenade.Generate(serenade.SmallDataset(1)) // or LoadCSV
//	idx, _ := serenade.BuildIndex(ds, 500)               // offline, daily
//	rec, _ := serenade.New(idx, serenade.Params{M: 500, K: 100})
//	items := rec.Recommend([]serenade.ItemID{42, 7}, 21) // online, per click
//
// For serving, NewServer wraps an index in a stateful HTTP application that
// maintains evolving user sessions, and NewPool shards sessions over
// several such replicas with sticky routing.
package serenade

import (
	"fmt"
	"runtime"
	"time"

	"serenade/internal/cluster"
	"serenade/internal/compressed"
	"serenade/internal/core"
	"serenade/internal/dataflow"
	"serenade/internal/incremental"
	"serenade/internal/index"
	"serenade/internal/kvstore"
	"serenade/internal/legacy"
	"serenade/internal/metrics"
	"serenade/internal/obs/quality"
	"serenade/internal/serving"
	"serenade/internal/sessions"
	"serenade/internal/synth"
	"serenade/internal/trending"
)

// Core data-model types.
type (
	// ItemID identifies a catalog item (dense small integers).
	ItemID = sessions.ItemID
	// SessionID identifies a historical session.
	SessionID = sessions.SessionID
	// Click is one (session, item, timestamp) interaction.
	Click = sessions.Click
	// Session is a time-ordered sequence of clicks by one user.
	Session = sessions.Session
	// Dataset is a click log with its grouped session view.
	Dataset = sessions.Dataset
	// DatasetStats are the Table 1 statistics of a dataset.
	DatasetStats = sessions.Stats
)

// Algorithm types.
type (
	// Index is the prebuilt VMIS-kNN session-similarity index (M, t).
	Index = core.Index
	// Params are the VMIS-kNN hyperparameters (sample size M, neighbours
	// K, decay and match-weight functions).
	Params = core.Params
	// ScoredItem is one recommendation with its score.
	ScoredItem = core.ScoredItem
	// Recommender executes VMIS-kNN queries. Not safe for concurrent use;
	// call Clone per goroutine.
	Recommender = core.Recommender
	// Neighbor is one of the k most similar historical sessions.
	Neighbor = core.Neighbor
	// Metrics holds ranking-quality metrics (MRR@k, Prec@k, …).
	Metrics = metrics.Report
)

// Serving types.
type (
	// Server is one stateful recommendation server.
	Server = serving.Server
	// ServerConfig parameterises a Server.
	ServerConfig = serving.Config
	// Request is one session update + recommendation request.
	Request = serving.Request
	// Response is the recommendation payload.
	Response = serving.Response
	// Catalog holds business-rule item flags (availability, adult).
	Catalog = serving.Catalog
	// Pool is a set of stateful replicas behind sticky-session routing.
	Pool = cluster.Pool
	// WALSyncPolicy selects when the durable session store fsyncs its
	// write-ahead log (ServerConfig.WALSync).
	WALSyncPolicy = kvstore.SyncPolicy
)

// Recommendation-quality telemetry types (ServerConfig.Quality): click
// attribution, per-variant windowed quality gauges and drift detection
// against an offline baseline. See DESIGN.md §13.
type (
	// QualityOptions enables the online quality loop on a Server: responses
	// carry recommendation ids, POST /track attributes feedback, and
	// GET /debug/quality exposes the windowed gauges.
	QualityOptions = quality.Options
	// QualityBaseline is the offline reference snapshot the drift detector
	// compares the online stream against (serenade-eval -quality-baseline).
	QualityBaseline = quality.Baseline
	// QualityDriftThresholds tune the drift detector.
	QualityDriftThresholds = quality.DriftThresholds
)

// LoadQualityBaseline reads a baseline written by serenade-eval
// -quality-baseline.
func LoadQualityBaseline(path string) (*QualityBaseline, error) {
	return quality.LoadBaseline(path)
}

// WAL sync policies, ordered from most to least durable.
const (
	// WALSyncAlways fsyncs every write before acknowledging it; no
	// acknowledged click can be lost to a crash.
	WALSyncAlways = kvstore.SyncAlways
	// WALSyncInterval group-commits on a short timer (the default): one
	// fsync covers every write in the window, bounding loss to that window.
	WALSyncInterval = kvstore.SyncInterval
	// WALSyncNever leaves flushing to the operating system.
	WALSyncNever = kvstore.SyncNever
)

// ParseWALSyncPolicy parses a -wal-sync flag value ("always", "interval" or
// "never"; empty means interval).
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return kvstore.ParseSyncPolicy(s) }

// DatasetConfig parameterises synthetic dataset generation.
type DatasetConfig = synth.Config

// Generate produces a synthetic e-commerce clickstream dataset.
func Generate(cfg DatasetConfig) (*Dataset, error) { return synth.Generate(cfg) }

// DatasetProfile returns a named dataset profile replicating the shape of
// one of the paper's datasets (see DatasetProfiles).
func DatasetProfile(name string) (DatasetConfig, error) { return synth.Profile(name) }

// DatasetProfiles lists the available profiles in Table 1 order.
func DatasetProfiles() []string { return synth.Profiles() }

// SmallDataset returns a small generation config for experimentation.
func SmallDataset(seed int64) DatasetConfig { return synth.Small(seed) }

// LoadCSV reads a click-log CSV (session_id,item_id,timestamp), gzip
// decompressed when path ends in ".gz".
func LoadCSV(path string) (*Dataset, error) { return sessions.LoadFile(path) }

// SaveCSV writes a dataset as a click-log CSV.
func SaveCSV(path string, ds *Dataset) error { return sessions.SaveFile(path, ds) }

// Stats computes Table 1 statistics for a dataset.
func Stats(ds *Dataset) DatasetStats { return sessions.ComputeStats(ds) }

// Split partitions the dataset temporally: sessions from the final testDays
// days form the held-out test set.
func Split(ds *Dataset, testDays int) (train, test *Dataset) {
	sp := sessions.TemporalSplit(ds, testDays)
	return sp.Train, sp.Test
}

// BuildIndex constructs the session-similarity index. Sessions are
// renumbered to dense, time-ascending identifiers first (session ids in the
// returned index therefore differ from the input's). capacity bounds the
// posting-list length per item and must be at least the largest query-time
// M; capacity <= 0 keeps complete lists.
func BuildIndex(ds *Dataset, capacity int) (*Index, error) {
	return core.BuildIndex(sessions.Renumber(ds), capacity)
}

// BuildIndexParallel builds the index with the data-parallel batch engine
// (the in-process equivalent of the paper's daily Spark job). workers <= 0
// selects GOMAXPROCS.
func BuildIndexParallel(ds *Dataset, capacity, workers int) (*Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return index.Build(dataflow.NewEngine(workers), sessions.Renumber(ds), capacity)
}

// SaveIndex writes the index to path in the default on-disk format (v2: the
// mmap-able CSR section format). Use SaveIndexFormat to write the v1
// compressed stream instead.
func SaveIndex(path string, idx *Index) error { return index.SaveFile(path, idx) }

// SaveIndexFormat writes the index to path in the requested on-disk format:
// "v1" is the flate-compressed varint stream, "v2" (the default) the
// section-table format LoadIndex can map into memory without decoding.
func SaveIndexFormat(path string, idx *Index, format string) error {
	return index.SaveFileFormat(path, idx, format)
}

// On-disk index format names accepted by SaveIndexFormat.
const (
	IndexFormatV1 = index.FormatV1
	IndexFormatV2 = index.FormatV2
)

// LoadIndex reads an index written by SaveIndex, verifying its checksums.
// v2 files are mmap(2)ed and served zero-copy straight from the page cache
// where the platform supports it — check (*Index).Mapped — and such indexes
// must be released with (*Index).Close once no reader can touch them
// (ServerConfig.OwnIndex automates this for serving rollovers).
func LoadIndex(path string) (*Index, error) { return index.LoadFile(path) }

// New creates a VMIS-kNN recommender over a prebuilt index.
func New(idx *Index, p Params) (*Recommender, error) { return core.NewRecommender(idx, p) }

// NewServer creates a stateful recommendation server over a (shared,
// immutable) index. Expose it over HTTP via (*Server).Handler.
func NewServer(idx *Index, cfg ServerConfig) (*Server, error) {
	return serving.NewServer(idx, cfg)
}

// NewCatalog returns an empty business-rules catalog.
func NewCatalog() *Catalog { return serving.NewCatalog() }

// NewPool creates n stateful replicas behind consistent-hash sticky
// routing, the in-process equivalent of the paper's Kubernetes deployment.
func NewPool(idx *Index, cfg ServerConfig, n int) (*Pool, error) {
	return cluster.NewPool(idx, cfg, n)
}

// ItemItemCF is the classic item-to-item collaborative filtering
// recommender (the paper's legacy A/B control).
type ItemItemCF struct{ m *legacy.Model }

// NewItemItemCF trains an item-to-item CF model on historical sessions.
func NewItemItemCF(ds *Dataset) *ItemItemCF {
	return &ItemItemCF{m: legacy.Train(ds, legacy.Config{})}
}

// Recommend returns the top-n neighbours of the session's most recent item.
func (c *ItemItemCF) Recommend(evolving []ItemID, n int) []ScoredItem {
	return c.m.Recommend(evolving, n)
}

// Evaluate scores a recommender with the session-rec protocol: for every
// prefix of every test session it requests the top-k items and credits the
// true next item (MRR, hit rate) and all remaining session items
// (precision, recall, MAP).
func Evaluate(recommend func(evolving []ItemID, n int) []ScoredItem, test *Dataset, k int) (Metrics, error) {
	if k < 1 {
		return Metrics{}, fmt.Errorf("serenade: evaluation cutoff k must be positive, got %d", k)
	}
	acc := metrics.NewRankingAccumulator(k)
	for si := range test.Sessions {
		s := &test.Sessions[si]
		for t := 0; t < s.Len()-1; t++ {
			recs := recommend(s.Items[:t+1], k)
			items := make([]ItemID, len(recs))
			for i, r := range recs {
				items[i] = r.Item
			}
			acc.Add(items, s.Items[t+1], s.Items[t+1:])
		}
	}
	return acc.Report(), nil
}

// Extension types: compressed and incrementally maintained indexes (the
// paper's future-work directions, see DESIGN.md).
type (
	// CompressedIndex is a varint-compressed in-memory index queried in
	// place.
	CompressedIndex = compressed.Index
	// CompressedRecommender executes VMIS-kNN over a CompressedIndex.
	CompressedRecommender = compressed.Recommender
	// IncrementalIndex is a log-structured index supporting online session
	// appends, retention eviction and compaction.
	IncrementalIndex = incremental.Index
	// IncrementalRecommender executes VMIS-kNN over an IncrementalIndex.
	IncrementalRecommender = incremental.Recommender
)

// Compress converts an index into its compressed in-memory representation;
// queries over it return identical results at a smaller footprint.
func Compress(idx *Index) *CompressedIndex { return compressed.FromIndex(idx) }

// NewCompressed creates a recommender over a compressed index.
func NewCompressed(idx *CompressedIndex, p Params) (*CompressedRecommender, error) {
	return compressed.NewRecommender(idx, p)
}

// NewIncrementalIndex builds an incrementally maintainable index from
// historical sessions. Append finished sessions with
// (*IncrementalIndex).Append, expire old ones with EvictBefore, and fold
// the accumulated delta into a fresh base with Compact.
func NewIncrementalIndex(ds *Dataset, capacity int) (*IncrementalIndex, error) {
	return incremental.FromDataset(ds, capacity)
}

// NewIncremental creates a recommender over an incrementally maintained
// index; queries interleave safely with appends and compactions.
func NewIncremental(x *IncrementalIndex, p Params) (*IncrementalRecommender, error) {
	return incremental.NewRecommender(x, p)
}

// TrendingTracker tracks exponentially-decayed item popularity for the
// companion "new and trending" slot (§4.1); wire it into ServerConfig's
// Trending field to expose GET /v1/trending.
type TrendingTracker = trending.Tracker

// NewTrendingTracker creates a tracker whose scores halve every halfLife.
func NewTrendingTracker(halfLife time.Duration) *TrendingTracker {
	return trending.New(halfLife, nil)
}

// Event is one raw user interaction (user, item, timestamp) prior to
// sessionization.
type Event = sessions.Event

// Sessionize groups a raw event log into sessions by user and inactivity
// gap (gap <= 0 selects the production 30 minutes).
func Sessionize(events []Event, gap time.Duration) *Dataset {
	return sessions.Sessionize(events, gap)
}

// FilterConfig parameterises dataset preprocessing.
type FilterConfig = sessions.FilterConfig

// FilterDataset applies the session-rec preprocessing pipeline (minimum
// item support, minimum session length, iterated to a fixed point) and
// returns the filtered dataset with the number of iterations taken.
func FilterDataset(ds *Dataset, cfg FilterConfig) (*Dataset, int) {
	return sessions.Filter(ds, cfg)
}

// Default decay and match-weight functions, re-exported for Params.
var (
	// LinearDecay is the paper's default position decay π.
	LinearDecay = core.LinearDecay
	// QuadraticDecay emphasises recent items more strongly.
	QuadraticDecay = core.QuadraticDecay
	// LinearMatchWeight is the paper's default match weight λ.
	LinearMatchWeight = core.LinearMatchWeight
	// ConstantMatchWeight ignores the match position.
	ConstantMatchWeight = core.ConstantMatchWeight
)
