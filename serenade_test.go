package serenade_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"serenade"
)

func smallDataset(t testing.TB) *serenade.Dataset {
	t.Helper()
	ds, err := serenade.Generate(serenade.SmallDataset(123))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEndToEndPublicAPI(t *testing.T) {
	ds := smallDataset(t)

	train, test := serenade.Split(ds, 1)
	if len(train.Sessions) == 0 || len(test.Sessions) == 0 {
		t.Fatal("empty split")
	}

	idx, err := serenade.BuildIndex(train, 500)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := serenade.New(idx, serenade.Params{M: 100, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	items := rec.Recommend(test.Sessions[0].Items[:1], 21)
	if len(items) == 0 {
		t.Fatal("no recommendations")
	}

	report, err := serenade.Evaluate(rec.Recommend, test, 20)
	if err != nil {
		t.Fatal(err)
	}
	if report.N == 0 || report.MRR <= 0 {
		t.Errorf("evaluation found no signal: %+v", report)
	}
}

func TestParallelBuildEqualsSequential(t *testing.T) {
	ds := smallDataset(t)
	a, err := serenade.BuildIndex(ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serenade.BuildIndexParallel(ds, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := serenade.New(a, serenade.Params{M: 100, K: 20})
	rb, _ := serenade.New(b, serenade.Params{M: 100, K: 20})
	q := []serenade.ItemID{1, 2, 3}
	if !reflect.DeepEqual(ra.Recommend(q, 10), rb.Recommend(q, 10)) {
		t.Error("parallel and sequential index builds disagree")
	}
}

func TestIndexAndCSVPersistence(t *testing.T) {
	dir := t.TempDir()
	ds := smallDataset(t)

	csvPath := filepath.Join(dir, "clicks.csv.gz")
	if err := serenade.SaveCSV(csvPath, ds); err != nil {
		t.Fatal(err)
	}
	back, err := serenade.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sessions) != len(ds.Sessions) {
		t.Fatalf("CSV round trip lost sessions: %d vs %d", len(back.Sessions), len(ds.Sessions))
	}

	idx, err := serenade.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "index.srn")
	if err := serenade.SaveIndex(idxPath, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := serenade.LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := serenade.New(idx, serenade.Params{M: 50, K: 20})
	rb, _ := serenade.New(loaded, serenade.Params{M: 50, K: 20})
	q := []serenade.ItemID{5}
	if !reflect.DeepEqual(ra.Recommend(q, 10), rb.Recommend(q, 10)) {
		t.Error("loaded index disagrees with original")
	}
}

func TestServerAndPoolFacade(t *testing.T) {
	ds := smallDataset(t)
	idx, err := serenade.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	catalog := serenade.NewCatalog()
	srv, err := serenade.NewServer(idx, serenade.ServerConfig{
		Params:  serenade.Params{M: 100, K: 50},
		Catalog: catalog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := srv.Recommend(serenade.Request{SessionKey: "u", Item: 0, Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) == 0 {
		t.Error("server returned no items")
	}

	pool, err := serenade.NewPool(idx, serenade.ServerConfig{Params: serenade.Params{M: 100, K: 50}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Recommend(serenade.Request{SessionKey: "u", Item: 0, Consent: true}); err != nil {
		t.Fatal(err)
	}
}

func TestItemItemCFFacade(t *testing.T) {
	ds := smallDataset(t)
	cf := serenade.NewItemItemCF(ds)
	if recs := cf.Recommend([]serenade.ItemID{0}, 10); len(recs) == 0 {
		t.Error("item-item CF returned nothing for a popular item")
	}
}

func TestEvaluateValidation(t *testing.T) {
	ds := smallDataset(t)
	if _, err := serenade.Evaluate(func([]serenade.ItemID, int) []serenade.ScoredItem { return nil }, ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestStatsFacade(t *testing.T) {
	st := serenade.Stats(smallDataset(t))
	if st.Sessions == 0 || st.Clicks == 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestCompressedFacade(t *testing.T) {
	ds := smallDataset(t)
	idx, err := serenade.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp := serenade.Compress(idx)
	if comp.MemoryFootprint() >= idx.MemoryFootprint() {
		t.Error("compression did not shrink the index")
	}
	a, err := serenade.New(idx, serenade.Params{M: 100, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := serenade.NewCompressed(comp, serenade.Params{M: 100, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	q := []serenade.ItemID{1, 2}
	if !reflect.DeepEqual(a.Recommend(q, 10), b.Recommend(q, 10)) {
		t.Error("compressed recommender disagrees")
	}
}

func TestIncrementalFacade(t *testing.T) {
	ds := smallDataset(t)
	inc, err := serenade.NewIncrementalIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := serenade.NewIncremental(inc, serenade.Params{M: 100, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	before := len(rec.Recommend([]serenade.ItemID{499}, 10))
	last := ds.Sessions[len(ds.Sessions)-1].Time()
	for i := 0; i < 20; i++ {
		last++
		if _, err := inc.Append([]serenade.ItemID{499, 498}, last); err != nil {
			t.Fatal(err)
		}
	}
	after := len(rec.Recommend([]serenade.ItemID{499}, 10))
	if after < before {
		t.Error("appends did not surface in recommendations")
	}
	if err := inc.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterDatasetFacade(t *testing.T) {
	ds := smallDataset(t)
	filtered, iters := serenade.FilterDataset(ds, serenade.FilterConfig{MinItemSupport: 3})
	if iters < 1 {
		t.Error("no filter iterations reported")
	}
	if len(filtered.Clicks) > len(ds.Clicks) {
		t.Error("filtering added clicks")
	}
}

func TestDatasetProfilesFacade(t *testing.T) {
	if len(serenade.DatasetProfiles()) != 6 {
		t.Error("expected 6 dataset profiles")
	}
	if _, err := serenade.DatasetProfile("ecom-1m-sim"); err != nil {
		t.Error(err)
	}
	if _, err := serenade.DatasetProfile("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}
