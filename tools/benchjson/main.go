// Command benchjson converts `go test -bench` text output on stdin into a
// JSON benchmark artifact on stdout, so perf runs can be committed as
// versioned BENCH_*.json files and diffed across PRs.
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./tools/benchjson > BENCH_x.json
//
// Output is one JSON document: {"goos": ..., "goarch": ..., "cpu": ...,
// "benchmarks": [{"name": ..., "iterations": ..., "ns_per_op": ...,
// "bytes_per_op": ..., "allocs_per_op": ...}, ...]}. Metric fields absent
// from a line (e.g. without -benchmem) are omitted.
//
// Lines of the form `BENCHJSON <key> <json>` are passed through verbatim
// into an "extra" map keyed by <key> — the escape hatch harness binaries
// (e.g. serenade-loadtest -slo-sweep) use to ship structured results, such
// as a burn-rate-vs-RPS trajectory, into the same versioned artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

type artifact struct {
	GOOS       string                     `json:"goos,omitempty"`
	GOARCH     string                     `json:"goarch,omitempty"`
	CPU        string                     `json:"cpu,omitempty"`
	Benchmarks []benchmark                `json:"benchmarks"`
	Extra      map[string]json.RawMessage `json:"extra,omitempty"`
}

func main() {
	out, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse converts benchmark text into the artifact document.
func parse(r io.Reader) (artifact, error) {
	var out artifact
	out.Benchmarks = []benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "BENCHJSON "):
			rest := strings.TrimPrefix(line, "BENCHJSON ")
			key, raw, ok := strings.Cut(rest, " ")
			if !ok || key == "" || !json.Valid([]byte(raw)) {
				fmt.Fprintf(os.Stderr, "benchjson: skipping malformed BENCHJSON line: %q\n", line)
				continue
			}
			if out.Extra == nil {
				out.Extra = make(map[string]json.RawMessage)
			}
			out.Extra[key] = json.RawMessage(raw)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// GOMAXPROCS is a run detail, not part of the benchmark's identity.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := benchmark{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = &v
			case "B/op":
				n := int64(v)
				b.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				b.AllocsPerOp = &n
			}
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
