package main

import (
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := `goos: linux
goarch: amd64
cpu: Example CPU
BenchmarkFoo-8   	 1000000	      1234 ns/op	      64 B/op	       2 allocs/op
garbage line
BenchmarkBare 500
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.GOOS != "linux" || out.GOARCH != "amd64" || out.CPU != "Example CPU" {
		t.Errorf("header = %q/%q/%q", out.GOOS, out.GOARCH, out.CPU)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkFoo" || b.Iterations != 1000000 {
		t.Errorf("benchmark = %+v", b)
	}
	if b.NsPerOp == nil || *b.NsPerOp != 1234 || b.BytesPerOp == nil || *b.BytesPerOp != 64 || b.AllocsPerOp == nil || *b.AllocsPerOp != 2 {
		t.Errorf("metrics = %+v", b)
	}
	if out.Benchmarks[1].NsPerOp != nil {
		t.Errorf("bare benchmark gained ns/op: %+v", out.Benchmarks[1])
	}
}

func TestParseBenchjsonPassthrough(t *testing.T) {
	in := `some table output the harness printed
BENCHJSON slo_sweep [{"rps":100,"burn_rate":0.5}]
BENCHJSON malformed not-json
BENCHJSON  {"orphan":true}
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Extra) != 1 {
		t.Fatalf("extra = %v, want only slo_sweep", out.Extra)
	}
	raw, ok := out.Extra["slo_sweep"]
	if !ok || string(raw) != `[{"rps":100,"burn_rate":0.5}]` {
		t.Errorf("slo_sweep = %s", raw)
	}
}
